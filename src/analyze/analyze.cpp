#include "analyze/analyze.hpp"

#include "analyze/value_range.hpp"
#include "rtl/lifetimes.hpp"
#include "rtl/netlist.hpp"

#include <algorithm>
#include <exception>
#include <iterator>
#include <sstream>
#include <utility>

namespace mwl {

void analysis_report::merge(analysis_report other)
{
    findings.insert(findings.end(),
                    std::make_move_iterator(other.findings.begin()),
                    std::make_move_iterator(other.findings.end()));
    checks += other.checks;
    truncated = truncated || other.truncated;
}

namespace {

template <typename... Parts>
std::string cat(const Parts&... parts)
{
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
}

/// Bounded finding sink: collection stops (and the report is marked
/// truncated) once max_findings is reached, so a pathological design
/// cannot blow up the report.
class sink {
public:
    sink(analysis_report& report, std::size_t cap)
        : report_(report), cap_(cap)
    {
    }

    template <typename... Parts>
    void add(const char* rule, finding_severity severity,
             std::string location, int bit_lo, int bit_hi,
             const Parts&... parts)
    {
        if (report_.findings.size() >= cap_) {
            report_.truncated = true;
            return;
        }
        report_.findings.push_back(make_finding(rule, severity,
                                                std::move(location),
                                                cat(parts...), bit_lo,
                                                bit_hi));
    }

    void push(finding f)
    {
        if (report_.findings.size() >= cap_) {
            report_.truncated = true;
            return;
        }
        report_.findings.push_back(std::move(f));
    }

    /// One fact verified (flagged or not) -- the throughput denominator.
    void checked() { ++report_.checks; }

private:
    analysis_report& report_;
    std::size_t cap_;
};

constexpr finding_severity err = finding_severity::error;
constexpr finding_severity warn = finding_severity::warning;

// --------------------------------------------------------------------------
// Structural lints: dead / unreachable IR nodes and write-write races,
// derived from reachability over the design alone.

void structural_lints(const rtl_design& design, sink& out)
{
    std::vector<char> reg_read(design.register_width.size(), 0);
    std::vector<char> reg_written(design.register_width.size(), 0);
    std::vector<char> input_read(design.inputs.size(), 0);
    std::vector<char> fu_captured(design.fus.size(), 0);
    std::vector<std::size_t> captured(design.n_ops, 0);

    for (const rtl_fu& fu : design.fus) {
        for (const auto& selects : fu.select) {
            for (const rtl_operand_select& sel : selects) {
                if (sel.source.from == rtl_source::kind::reg) {
                    if (sel.source.index < reg_read.size()) {
                        reg_read[sel.source.index] = 1;
                    }
                } else if (sel.source.index < input_read.size()) {
                    input_read[sel.source.index] = 1;
                }
            }
        }
    }
    for (const rtl_capture& cap : design.captures) {
        if (cap.reg < reg_written.size()) {
            reg_written[cap.reg] = 1;
        }
        if (cap.fu < fu_captured.size()) {
            fu_captured[cap.fu] = 1;
        }
        if (cap.op.is_valid() && cap.op.value() < captured.size()) {
            ++captured[cap.op.value()];
        }
    }
    for (const rtl_output& o : design.outputs) {
        if (o.reg < reg_read.size()) {
            reg_read[o.reg] = 1;
        }
    }

    for (std::size_t r = 0; r < design.register_width.size(); ++r) {
        out.checked();
        if (!reg_read[r] && !reg_written[r]) {
            out.add("lint.dead-register", warn, cat("r", r), -1, -1,
                    "register is never read or written");
        } else if (!reg_read[r]) {
            out.add("lint.register-never-read", warn, cat("r", r), -1, -1,
                    "register is written but never read");
        } else if (!reg_written[r]) {
            out.add("lint.register-never-written", err, cat("r", r), -1, -1,
                    "register is read but never written (holds reset "
                    "garbage)");
        }
    }
    for (std::size_t f = 0; f < design.fus.size(); ++f) {
        out.checked();
        if (!fu_captured[f]) {
            out.add("lint.dead-fu", warn, cat("fu", f), -1, -1,
                    "functional unit's result is never captured");
        }
    }
    for (std::size_t i = 0; i < design.inputs.size(); ++i) {
        out.checked();
        if (!input_read[i]) {
            out.add("lint.unused-input", warn, design.inputs[i].name, -1,
                    -1, "primary input is never selected by any operand "
                        "mux");
        }
    }
    for (std::size_t o = 0; o < design.n_ops; ++o) {
        out.checked();
        if (captured[o] == 0) {
            out.add("lint.uncaptured-op", err, cat("op ", o), -1, -1,
                    "operation's result is never captured");
        } else if (captured[o] > 1) {
            out.add("lint.multi-capture", err, cat("op ", o), -1, -1,
                    "operation captured ", captured[o],
                    " times (expected exactly 1)");
        }
    }

    // Same-edge write-write race, independent of the captures' sort
    // invariant (sort a copy; validate_design checks the invariant).
    std::vector<std::pair<int, std::size_t>> writes;
    writes.reserve(design.captures.size());
    for (const rtl_capture& cap : design.captures) {
        writes.emplace_back(cap.cycle, cap.reg);
    }
    std::sort(writes.begin(), writes.end());
    for (std::size_t i = 0; i + 1 < writes.size(); ++i) {
        out.checked();
        if (writes[i] == writes[i + 1]) {
            out.add("lint.write-write", err, cat("r", writes[i].second), -1,
                    -1, "register written twice in cycle ",
                    writes[i].first);
        }
    }
}

// --------------------------------------------------------------------------
// Value-range walk.
//
// Replays the interpreter's evaluation order symbolically: captures in
// (cycle, register) order, reads against the pre-edge register state,
// same-edge writes committed together. Per register the state is *which
// operation's exact arithmetic value it holds and at what effective wrap
// width* -- `value(op, e)` asserts the register's signed content equals
// wrap_e(math(op)), where math(op) is the unbounded reference result whose
// interval analyze_ranges() bounds. On a correct elaboration every read
// and capture is width-exact, so no interval is ever consulted; intervals
// only decide whether a *mismatched* adaptation still provably preserves
// the value.

struct reg_state {
    enum class kind {
        empty,   ///< never written
        value,   ///< holds wrap_{eff_width}(math(op))
        corrupt, ///< derived from `op` but already flagged as wrong
    };
    kind tag = kind::empty;
    op_id op;
    int eff_width = 0;
};

class range_walk {
public:
    range_walk(const sequencing_graph& graph, const rtl_design& design,
               sink& out)
        : graph_(graph), design_(design), out_(out),
          ranges_(analyze_ranges(graph)),
          state_(design.register_width.size())
    {
    }

    void run()
    {
        for (std::size_t c = 0; c < design_.captures.size();) {
            const int cycle = design_.captures[c].cycle;
            // Pre-edge reads for every capture on this edge, then one
            // nonblocking commit (the interpreter's semantics).
            std::vector<std::pair<std::size_t, reg_state>> staged;
            for (; c < design_.captures.size() &&
                   design_.captures[c].cycle == cycle;
                 ++c) {
                process_capture(design_.captures[c], staged);
            }
            for (auto& [reg, st] : staged) {
                state_[reg] = st;
            }
        }
        check_outputs();
    }

private:
    /// The select entry driving `port` of `fu` in `cycle` (the mux case
    /// active when the unit's result is latched), or nullptr when the mux
    /// falls through to its default 0.
    const rtl_operand_select* active_select(const rtl_fu& fu, int port,
                                            int cycle) const
    {
        for (const rtl_operand_select& sel :
             fu.select[static_cast<std::size_t>(port)]) {
            if (sel.first_cycle <= cycle && cycle <= sel.last_cycle) {
                return &sel;
            }
        }
        return nullptr;
    }

    /// Check one operand read; returns false when the value reaching the
    /// port provably-or-possibly differs from the reference operand.
    bool check_read(const rtl_capture& cap, int port, const op_shape& shape)
    {
        const op_id o = cap.op;
        const rtl_fu& fu = design_.fus[cap.fu];
        const auto preds = graph_.predecessors(o);
        const int wo = operand_width(shape, port);
        const std::string where = cat("fu", cap.fu,
                                      port == 0 ? "_a" : "_b", " (op ", o,
                                      ")");
        out_.checked();

        const rtl_operand_select* sel = active_select(fu, port, cap.cycle);
        if (sel == nullptr) {
            out_.add("range.missing-select", err, where, -1, -1,
                     "no operand selected in cycle ", cap.cycle,
                     " -- the mux default 0 feeds the port");
            return false;
        }
        const bool internal = static_cast<std::size_t>(port) < preds.size();

        if (!internal) {
            // Reference semantics: a fresh external value wrapped at the
            // operation's native operand width. The raw external value is
            // unbounded, so no interval can excuse a width mismatch.
            if (sel->source.from != rtl_source::kind::input ||
                sel->source.index >= design_.inputs.size()) {
                out_.add("range.stale-operand", err, where, -1, -1,
                         "expected a primary input, port reads a register");
                return false;
            }
            const rtl_input& in = design_.inputs[sel->source.index];
            if (in.op != o || in.port != port) {
                out_.add("range.stale-operand", err, where, -1, -1,
                         "port is fed from unrelated primary input ",
                         in.name);
                return false;
            }
            if (in.width < wo) {
                out_.add("range.input-narrow", err, in.name, in.width,
                         wo - 1, "input port is ", in.width,
                         " bits, the operation consumes ", wo);
                return false;
            }
            const int e = std::min(sel->adapt.slice_width, in.width);
            bool ok = true;
            if (sel->adapt.out_width > sel->adapt.slice_width &&
                !sel->adapt.sign_extend) {
                // The sliced external value spans the full e-bit range, so
                // a widening zero-extension always corrupts negatives.
                out_.add("range.operand-zero-extend", err, where,
                         sel->adapt.slice_width, sel->adapt.out_width - 1,
                         "negative external operand zero-extended into the "
                         "port");
                ok = false;
            }
            if (e < wo) {
                out_.add("range.operand-trunc", err, where, e, wo - 1,
                         "external operand sliced at ", e,
                         " bits, native width is ", wo);
                ok = false;
            } else if (e > wo) {
                out_.add("range.operand-unwrapped", err, where, wo, e - 1,
                         "external operand not wrapped at the native ", wo,
                         "-bit width (reads ", e, " bits)");
                ok = false;
            }
            return ok;
        }

        // Internal operand: the port must see the predecessor's result.
        const op_id pred = preds[static_cast<std::size_t>(port)];
        if (sel->source.from != rtl_source::kind::reg) {
            out_.add("range.stale-operand", err, where, -1, -1,
                     "expected the value of op ", pred,
                     ", port reads a primary input");
            return false;
        }
        if (sel->source.index >= state_.size()) {
            out_.add("lint.bad-index", err, where, -1, -1,
                     "select references unknown register ",
                     sel->source.index);
            return false;
        }
        const reg_state& st = state_[sel->source.index];
        if (st.tag == reg_state::kind::empty) {
            out_.add("range.uninitialized-read", err, where, -1, -1,
                     "reads r", sel->source.index,
                     " before any value is captured into it");
            return false;
        }
        if (st.op != pred) {
            out_.add("range.stale-operand", err, where, -1, -1, "r",
                     sel->source.index, " holds the value of op ", st.op,
                     " in cycle ", cap.cycle, ", expected op ", pred);
            return false;
        }
        if (st.tag == reg_state::kind::corrupt) {
            // Right producer, already-flagged wrong value: the root cause
            // carries the finding; do not cascade.
            return false;
        }

        // The register holds wrap_{st.eff_width}(math(pred)); the read
        // slices at the adapt width, so the port sees an e-bit wrap. The
        // reference feeds an m-bit wrap (operand width capped by the
        // producer's native result width). Width-equal reads are exact;
        // mismatched reads are fine only when the producer's math interval
        // provably fits the smaller width (then neither wrap changes it).
        const value_interval& math = ranges_.math[pred.value()];
        const int e = std::min(sel->adapt.slice_width, st.eff_width);
        const int m = std::min(wo, result_width(graph_.shape(pred)));
        bool ok = true;
        if (sel->adapt.out_width > sel->adapt.slice_width &&
            !sel->adapt.sign_extend &&
            wrap_interval(math, e).contains_negative()) {
            out_.add("range.operand-zero-extend", err, where,
                     sel->adapt.slice_width, sel->adapt.out_width - 1,
                     "possibly-negative value of op ", pred,
                     " zero-extended into the port");
            ok = false;
        }
        if (e != m && !fits_width(math, std::min(e, m))) {
            if (e < m) {
                out_.add("range.operand-trunc", err, where, e, m - 1,
                         "operand of op ", o, " sliced at ", e,
                         " bits, value of op ", pred, " needs ", m);
            } else {
                out_.add("range.operand-unwrapped", err, where, m, e - 1,
                         "operand not wrapped at the native ", m,
                         "-bit width (reads ", e, " bits of op ", pred,
                         ")");
            }
            ok = false;
        }
        return ok;
    }

    void process_capture(const rtl_capture& cap,
                         std::vector<std::pair<std::size_t, reg_state>>& staged)
    {
        out_.checked();
        if (cap.fu >= design_.fus.size() ||
            cap.reg >= design_.register_width.size() ||
            !cap.op.is_valid() || cap.op.value() >= graph_.size()) {
            out_.add("lint.bad-index", err, cat("capture@", cap.cycle), -1,
                     -1, "capture references an out-of-range fu, register "
                         "or op");
            return;
        }
        const op_id o = cap.op;
        const op_shape& shape = graph_.shape(o);
        const rtl_fu& fu = design_.fus[cap.fu];

        bool clean = check_read(cap, 0, shape);
        clean = check_read(cap, 1, shape) && clean;

        out_.checked();
        if (fu.kind == op_kind::mul && !fu.signed_arith) {
            // An unsigned `*` multiplies the raw operand bit patterns; the
            // product's upper bits differ from the signed product whenever
            // an operand can be negative (pattern = value + 2^width).
            const auto& in = ranges_.operand[o.value()];
            if (in[0].contains_negative() || in[1].contains_negative()) {
                out_.add("range.unsigned-mul", err, cat("fu", cap.fu),
                         std::min(fu.width_a, fu.width_b), fu.width_y - 1,
                         "unsigned multiplier body: signed operands of op ",
                         o, " multiply incorrectly in the upper bits");
                clean = false;
            }
        }

        // Capture adaptation: the unit's result is an exact wy-bit wrap of
        // math(o); the capture slice re-wraps at e_cap. Downstream reads
        // re-wrap again, so storing *more* bits than the native result
        // width is harmless by itself -- what corrupts is a zero-extended
        // possibly-negative slice, or a slice below what a reader needs
        // (checked here against the native width, and again per-read).
        out_.checked();
        const int rw = result_width(shape);
        const int e_cap = std::min(cap.adapt.slice_width, fu.width_y);
        const value_interval& math = ranges_.math[o.value()];
        const std::string where = cat("r", cap.reg, " (op ", o, " @cycle ",
                                      cap.cycle, ")");
        if (cap.adapt.out_width > cap.adapt.slice_width &&
            !cap.adapt.sign_extend &&
            wrap_interval(math, e_cap).contains_negative()) {
            out_.add("range.capture-zero-extend", err, where,
                     cap.adapt.slice_width, cap.adapt.out_width - 1,
                     "possibly-negative result of op ", o,
                     " zero-extended into the shared register -- stale "
                     "zero upper bits on readback");
            clean = false;
        }
        if (e_cap < rw && !fits_width(math, e_cap)) {
            out_.add("range.capture-trunc", err, where, e_cap, rw - 1,
                     "result of op ", o, " captured at ", e_cap,
                     " bits, native result width is ", rw);
            clean = false;
        }

        reg_state next;
        next.tag = clean ? reg_state::kind::value : reg_state::kind::corrupt;
        next.op = o;
        next.eff_width = e_cap;
        staged.emplace_back(cap.reg, next);
    }

    void check_outputs()
    {
        for (const rtl_output& o : design_.outputs) {
            out_.checked();
            if (o.reg >= state_.size() || !o.op.is_valid() ||
                o.op.value() >= graph_.size()) {
                out_.add("lint.bad-index", err, o.name, -1, -1,
                         "output references an out-of-range register or "
                         "op");
                continue;
            }
            const reg_state& st = state_[o.reg];
            if (st.tag == reg_state::kind::empty) {
                out_.add("range.uninitialized-read", err, o.name, -1, -1,
                         "output reads r", o.reg,
                         ", which is never written");
                continue;
            }
            if (st.op != o.op) {
                out_.add("range.output-clobbered", err, o.name, -1, -1,
                         "r", o.reg, " was recycled: it holds the value "
                                     "of op ",
                         st.op, " past the final cycle, the output "
                                "expects op ",
                         o.op);
                continue;
            }
            if (st.tag == reg_state::kind::corrupt) {
                continue; // root cause already flagged at the capture
            }
            const int rw = result_width(graph_.shape(o.op));
            const value_interval& math = ranges_.math[o.op.value()];
            const int e = std::min(o.width, st.eff_width);
            if (e < rw && !fits_width(math, e)) {
                out_.add("range.capture-trunc", err, o.name, e, rw - 1,
                         "output delivers ", e, " bits of op ", o.op,
                         ", native result width is ", rw);
            }
        }
    }

    const sequencing_graph& graph_;
    const rtl_design& design_;
    sink& out_;
    range_analysis ranges_;
    std::vector<reg_state> state_;
};

// --------------------------------------------------------------------------
// Schedule re-derivations, independent of core/validate.

void schedule_checks(const sequencing_graph& graph, const datapath& path,
                     sink& out)
{
    // Precedence: every producer finishes no later than its consumer
    // starts, at the *bound* instance latency.
    for (const op_id o : graph.all_ops()) {
        const int finish = path.start[o.value()] + path.bound_latency(o);
        for (const op_id s : graph.successors(o)) {
            out.checked();
            if (finish > path.start[s.value()]) {
                out.add("sched.precedence", err, cat("op ", o), -1, -1,
                        "finishes at ", finish, " but successor op ", s,
                        " starts at ", path.start[s.value()]);
            }
        }
    }
    // Exclusivity: operations bound to one instance must be time-disjoint.
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        const datapath_instance& inst = path.instances[i];
        for (std::size_t a = 0; a < inst.ops.size(); ++a) {
            for (std::size_t b = a + 1; b < inst.ops.size(); ++b) {
                out.checked();
                const int sa = path.start[inst.ops[a].value()];
                const int sb = path.start[inst.ops[b].value()];
                if (!(sa + inst.latency <= sb || sb + inst.latency <= sa)) {
                    out.add("sched.exclusivity", err, cat("instance ", i),
                            -1, -1, "ops ", inst.ops[a], " and ",
                            inst.ops[b], " overlap in time");
                }
            }
        }
    }
}

/// Register sharing against independently recomputed (correct-semantics)
/// lifetimes: two values time-multiplexed onto one register must have
/// disjoint live ranges. Catches an allocator (or the legacy output-
/// recycling mode) packing a last-cycle capture into a register a primary
/// output is still holding.
void lifetime_checks(const sequencing_graph& graph, const datapath& path,
                     const rtl_netlist& net, sink& out)
{
    const std::vector<value_lifetime> truth = compute_lifetimes(graph, path);
    for (std::size_t r = 0; r < net.registers.size(); ++r) {
        const std::vector<std::size_t>& values = net.registers[r].values;
        for (std::size_t a = 0; a < values.size(); ++a) {
            for (std::size_t b = a + 1; b < values.size(); ++b) {
                out.checked();
                const value_lifetime& va = truth[values[a]];
                const value_lifetime& vb = truth[values[b]];
                if (va.birth < vb.death && vb.birth < va.death) {
                    out.add("sched.lifetime-overlap", err, cat("r", r), -1,
                            -1, "values of op ", va.producer, " [",
                            va.birth, ", ", va.death, ") and op ",
                            vb.producer, " [", vb.birth, ", ", vb.death,
                            ") share the register while both live");
                }
            }
        }
    }
}

} // namespace

analysis_report analyze_design(const sequencing_graph& graph,
                               const rtl_design& design,
                               const analyze_options& options)
{
    analysis_report report;
    sink out(report, options.max_findings);

    if (design.n_ops != graph.size()) {
        out.add("lint.graph-mismatch", err, "design", -1, -1,
                "design has ", design.n_ops, " ops, graph has ",
                graph.size());
        return report; // the walk would mis-index everything downstream
    }
    if (options.structural) {
        structural_lints(design, out);
    }
    if (options.ranges) {
        range_walk(graph, design, out).run();
    }
    return report;
}

analysis_report analyze_allocation(const sequencing_graph& graph,
                                   const hardware_model& model,
                                   const datapath& path,
                                   const elaborate_options& elaborate_opts,
                                   const analyze_options& options)
{
    analysis_report report;
    sink out(report, options.max_findings);

    if (path.start.size() != graph.size() ||
        path.instance_of_op.size() != graph.size()) {
        out.add("sched.size-mismatch", err, "path", -1, -1,
                "datapath vectors do not match the graph (", graph.size(),
                " ops)");
        return report;
    }
    for (const op_id o : graph.all_ops()) {
        out.checked();
        if (path.start[o.value()] < 0 ||
            path.instance_of_op[o.value()] >= path.instances.size()) {
            out.add("sched.unscheduled", err, cat("op ", o), -1, -1,
                    "operation is unscheduled or bound to an unknown "
                    "instance");
        }
    }
    if (!report.findings.empty()) {
        return report; // timing/lifetime derivations assume sane indices
    }

    if (options.schedule) {
        schedule_checks(graph, path, out);
    }
    try {
        const rtl_netlist net =
            build_rtl(graph, model, path, {},
                      elaborate_opts.legacy_output_recycling);
        if (options.schedule) {
            lifetime_checks(graph, path, net, out);
        }
        const rtl_design design =
            elaborate(graph, path, net, "static_check", elaborate_opts);
        if (options.structural) {
            for (finding& f : validate_design(design)) {
                out.checked();
                out.push(std::move(f));
            }
        }
        // Hand the design walk only the finding budget we have left, so
        // the merged report still honours max_findings overall.
        analyze_options inner = options;
        inner.max_findings =
            options.max_findings > report.findings.size()
                ? options.max_findings - report.findings.size()
                : 0;
        report.merge(analyze_design(graph, design, inner));
    } catch (const std::exception& e) {
        out.add("lint.elaborate-error", err, "elaborate", -1, -1,
                e.what());
    }
    return report;
}

} // namespace mwl
