// Bump arena for per-iteration scratch rows.
//
// The refinement loop re-derives the same families of short-lived arrays
// every iteration (candidate chains, coverage rows, CSR scratch). A bump
// arena turns each family into one pointer increment: blocks are grabbed
// from the heap once, reset() rewinds to empty without freeing, and rows
// handed out stay valid until the next reset. Only trivially destructible
// element types are allowed -- nothing is ever destroyed, only rewound.

#ifndef MWL_SUPPORT_ARENA_HPP
#define MWL_SUPPORT_ARENA_HPP

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace mwl {

class bump_arena {
public:
    explicit bump_arena(std::size_t first_block_bytes = 1 << 14)
        : first_block_bytes_(first_block_bytes)
    {
    }

    /// Hand out `count` default-initialised elements. The row stays valid
    /// until reset(); no per-row free exists.
    template <typename T>
    [[nodiscard]] std::span<T> alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena rows are rewound, never destroyed");
        if (count == 0) {
            return {};
        }
        const std::size_t bytes = count * sizeof(T);
        void* p = grab(bytes, alignof(T));
        return {new (p) T[count], count};
    }

    /// Rewind to empty, keeping every block for reuse.
    void reset()
    {
        for (block& b : blocks_) {
            b.used = 0;
        }
        active_ = 0;
    }

    /// Total bytes currently reserved across blocks (for stats/tests).
    [[nodiscard]] std::size_t capacity_bytes() const
    {
        std::size_t total = 0;
        for (const block& b : blocks_) {
            total += b.size;
        }
        return total;
    }

private:
    struct block {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    void* grab(std::size_t bytes, std::size_t align)
    {
        while (active_ < blocks_.size()) {
            block& b = blocks_[active_];
            const std::size_t at = (b.used + align - 1) & ~(align - 1);
            if (at + bytes <= b.size) {
                b.used = at + bytes;
                return b.data.get() + at;
            }
            ++active_;
        }
        std::size_t size = blocks_.empty() ? first_block_bytes_
                                           : blocks_.back().size * 2;
        if (size < bytes + align) {
            size = bytes + align;
        }
        blocks_.push_back(
            block{std::make_unique<std::byte[]>(size), size, 0});
        block& b = blocks_.back();
        const std::size_t at =
            (reinterpret_cast<std::uintptr_t>(b.data.get()) % align == 0)
                ? 0
                : align; // operator new aligns to max_align_t; cheap guard
        b.used = at + bytes;
        return b.data.get() + at;
    }

    std::size_t first_block_bytes_;
    std::vector<block> blocks_;
    std::size_t active_ = 0;
};

} // namespace mwl

#endif // MWL_SUPPORT_ARENA_HPP
