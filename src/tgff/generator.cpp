#include "tgff/generator.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

op_shape random_shape(const tgff_options& options, rng& random)
{
    const bool is_mul = random.chance(options.mul_fraction);
    if (is_mul) {
        const int a = random.uniform_int(options.min_width, options.max_width);
        const int b = random.uniform_int(options.min_width, options.max_width);
        return op_shape::multiplier(a, b);
    }
    return op_shape::adder(
        random.uniform_int(options.min_width, options.max_width));
}

} // namespace

sequencing_graph generate_tgff(const tgff_options& options, rng& random)
{
    require(options.n_ops >= 1, "graph must have at least one operation");
    require(options.min_width >= 1 && options.min_width <= options.max_width,
            "invalid wordlength range");
    require(options.mul_fraction >= 0.0 && options.mul_fraction <= 1.0,
            "mul_fraction must be a probability");
    require(options.attach_probability >= 0.0 &&
                options.attach_probability <= 1.0,
            "attach_probability must be a probability");
    require(options.max_fan_in >= 1, "max_fan_in must be >= 1");

    sequencing_graph graph;
    for (std::size_t i = 0; i < options.n_ops; ++i) {
        const op_id id = graph.add_operation(random_shape(options, random));
        if (i == 0 || !random.chance(options.attach_probability)) {
            continue; // independent root, a new TGFF chain
        }
        // Attach to up to max_fan_in distinct earlier operations. Sampling
        // earlier ids only keeps the graph acyclic by construction.
        const int fan_in = random.uniform_int(1, options.max_fan_in);
        for (int k = 0; k < fan_in; ++k) {
            const op_id pred(random.uniform(0, id.value() - 1));
            graph.add_dependency(pred, id); // duplicates are idempotent
        }
    }
    return graph;
}

} // namespace mwl
