#include "wordlength/optimizer.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"
#include "support/interrupt.hpp"
#include "support/rng.hpp"
#include "tgff/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

namespace mwl {

namespace {

/// One evaluated candidate: the assignment plus its real allocation.
struct candidate_eval {
    std::vector<int> frac;
    long long bits = 0;
    int lambda = 0;
    int latency = 0;
    double area = 0.0;
    bool ok = false;    ///< allocation succeeded
    bool reused = false; ///< answered from the cache or coalesced
};

/// Strict lexicographic "cheaper" on (area, total bits, latency). Area
/// compares exactly: dpalloc is deterministic, so equal designs produce
/// bit-equal doubles and an epsilon would only blur real ties.
bool cheaper(const candidate_eval& a, const candidate_eval& b)
{
    if (a.area != b.area) {
        return a.area < b.area;
    }
    if (a.bits != b.bits) {
        return a.bits < b.bits;
    }
    return a.latency < b.latency;
}

class search {
public:
    search(const tune_problem& problem, const hardware_model& model,
           const optimizer_options& options, batch_engine& engine)
        : problem_(problem), model_(model), options_(options),
          engine_(engine),
          gains_(output_gains(problem.graph, problem.coeff_gain))
    {
    }

    tune_result run()
    {
        const wordlength_assignment seed_assignment =
            assign_fractional_widths(problem_.graph, gains_,
                                     options_.noise); // throws if infeasible

        candidate_eval best = evaluate_one(seed_assignment.frac_bits);
        if (!best.ok) {
            throw error("wordlength optimizer: seed design failed to "
                        "allocate at slack " +
                        std::to_string(options_.slack));
        }
        best = descend(std::move(best));
        if (options_.anneal_iterations > 0 && !stats_.interrupted) {
            best = anneal(std::move(best));
        }

        tune_result result;
        result.best.frac_bits = best.frac;
        result.best.noise_power = noise_of(best.frac);
        result.best.total_frac = best.bits;
        result.best.lambda = best.lambda;
        result.best.latency = best.latency;
        result.best.area = best.area;
        result.stats = stats_;
        return result;
    }

private:
    double noise_of(const std::vector<int>& frac) const
    {
        double total = 0.0;
        for (std::size_t o = 0; o < frac.size(); ++o) {
            total += gains_[o] * truncation_noise_power(frac[o]);
        }
        return total;
    }

    /// Evaluate candidates through the engine, in order. Batch mode
    /// submits them all and drains once (parallel across the pool, and
    /// duplicates of anything seen before answer from the LRU); run mode
    /// executes them one by one, safe under a shared engine.
    std::vector<candidate_eval>
    evaluate_all(std::vector<std::vector<int>> candidates)
    {
        std::deque<sequencing_graph> graphs; // borrowed until drain
        std::vector<candidate_eval> evals;
        evals.reserve(candidates.size());
        for (std::vector<int>& frac : candidates) {
            candidate_eval e;
            e.bits = total_frac_bits(frac);
            graphs.push_back(apply_frac_bits(problem_, frac));
            e.lambda = relaxed_lambda(min_latency(graphs.back(), model_),
                                      options_.slack);
            e.frac = std::move(frac);
            evals.push_back(std::move(e));
        }
        stats_.evaluations += evals.size();

        const auto absorb = [](candidate_eval& e,
                               const batch_engine::outcome& out) {
            e.reused = out.from_cache || out.coalesced;
            if (out.ok()) {
                e.ok = true;
                e.latency = out.result->path.latency;
                e.area = out.result->path.total_area;
            }
        };
        if (options_.batch_neighbors) {
            for (std::size_t i = 0; i < evals.size(); ++i) {
                static_cast<void>(engine_.submit(graphs[i], model_,
                                                 evals[i].lambda));
            }
            const std::vector<batch_engine::outcome> outcomes =
                engine_.drain();
            for (std::size_t i = 0; i < evals.size(); ++i) {
                absorb(evals[i], outcomes[i]);
            }
        } else {
            for (std::size_t i = 0; i < evals.size(); ++i) {
                absorb(evals[i],
                       engine_.run(graphs[i], model_, evals[i].lambda));
            }
        }
        for (const candidate_eval& e : evals) {
            if (e.reused) {
                ++stats_.reused;
            }
        }
        return evals;
    }

    candidate_eval evaluate_one(std::vector<int> frac)
    {
        std::vector<std::vector<int>> one;
        one.push_back(std::move(frac));
        return std::move(evaluate_all(std::move(one)).front());
    }

    /// Greedy descent: per step, evaluate every noise-feasible +-1
    /// neighbour and take the strictly cheapest. (area, bits) strictly
    /// lex-decreases each accepted step, so no state repeats and the
    /// walk terminates without a tabu list.
    candidate_eval descend(candidate_eval current)
    {
        for (std::size_t step = 0; step < options_.max_steps; ++step) {
            if (interrupt_requested()) {
                stats_.interrupted = true;
                break;
            }
            std::vector<std::vector<int>> neighbours;
            for (std::size_t o = 0; o < current.frac.size(); ++o) {
                if (current.frac[o] > options_.noise.min_frac_bits) {
                    std::vector<int> down = current.frac;
                    --down[o];
                    if (noise_of(down) <= options_.noise.budget) {
                        neighbours.push_back(std::move(down));
                    }
                }
                if (current.frac[o] < options_.noise.max_frac_bits) {
                    // Widening only lowers noise; no budget check needed.
                    std::vector<int> up = current.frac;
                    ++up[o];
                    neighbours.push_back(std::move(up));
                }
            }
            if (neighbours.empty()) {
                break;
            }
            std::vector<candidate_eval> evals =
                evaluate_all(std::move(neighbours));
            candidate_eval* best = nullptr;
            for (candidate_eval& e : evals) {
                if (e.ok && cheaper(e, current) &&
                    (best == nullptr || cheaper(e, *best))) {
                    best = &e;
                }
            }
            if (best == nullptr) {
                break; // local optimum under the real cost
            }
            current = std::move(*best);
            ++stats_.steps;
        }
        return current;
    }

    /// Metropolis refinement around the greedy optimum. The scalar energy
    /// is area plus a small per-bit tie-break, mirroring the (area, bits)
    /// lexicographic objective: without it, equal-area moves (the datapath
    /// cost is coarsely quantised) would always be accepted and the walk
    /// would diffuse across the whole plateau instead of settling. The
    /// temperature cools geometrically to ~1e-4 of t0, so the late walk
    /// freezes near the optimum, re-proposes its small neighbourhood, and
    /// answers mostly from the engine's LRU. The best design visited is
    /// returned (never worse than the greedy input).
    candidate_eval anneal(candidate_eval best)
    {
        rng random(options_.seed);
        candidate_eval state = best;
        const double t0 =
            options_.anneal_temp * std::max(1.0, best.area);
        const auto energy = [](const candidate_eval& e) {
            return e.area + 0.1 * static_cast<double>(e.bits);
        };
        const std::size_t n = state.frac.size();
        for (std::size_t k = 0; k < options_.anneal_iterations; ++k) {
            if (interrupt_requested()) {
                stats_.interrupted = true;
                break;
            }
            const std::size_t o =
                random.uniform(0, static_cast<std::uint64_t>(n) - 1);
            const int delta = random.chance(0.5) ? 1 : -1;
            const int moved = state.frac[o] + delta;
            if (moved < options_.noise.min_frac_bits ||
                moved > options_.noise.max_frac_bits) {
                continue;
            }
            std::vector<int> frac = state.frac;
            frac[o] = moved;
            if (delta < 0 && noise_of(frac) > options_.noise.budget) {
                continue;
            }
            candidate_eval cand = evaluate_one(std::move(frac));
            if (!cand.ok) {
                continue;
            }
            const double temp =
                t0 * std::pow(1e-4,
                              static_cast<double>(k) /
                                  static_cast<double>(
                                      options_.anneal_iterations));
            const double d = energy(cand) - energy(state);
            bool accept = d < 0.0;
            if (!accept && temp > 0.0) {
                accept = random.uniform_real() < std::exp(-d / temp);
            }
            if (!accept) {
                continue;
            }
            ++stats_.anneal_accepted;
            state = std::move(cand);
            if (cheaper(state, best)) {
                best = state;
            }
        }
        return best;
    }

    const tune_problem& problem_;
    const hardware_model& model_;
    const optimizer_options& options_;
    batch_engine& engine_;
    std::vector<double> gains_;
    tune_stats stats_;
};

} // namespace

tune_result optimize_wordlengths(const tune_problem& problem,
                                 const hardware_model& model,
                                 const optimizer_options& options,
                                 batch_engine& engine)
{
    require(options.slack >= 0.0, "optimizer slack must be non-negative");
    require(options.anneal_temp > 0.0,
            "optimizer anneal_temp must be positive");
    return search(problem, model, options, engine).run();
}

} // namespace mwl
