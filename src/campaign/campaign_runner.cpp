#include "campaign/campaign_runner.hpp"

#include "dfg/analysis.hpp"
#include "engine/batch_engine.hpp"
#include "support/interrupt.hpp"
#include "tgff/corpus.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace mwl {

campaign_run_summary run_campaign(const campaign_spec& spec,
                                  const std::vector<campaign_point>& points,
                                  result_store& store,
                                  const campaign_run_options& options)
{
    campaign_run_summary summary;
    summary.total = points.size();

    std::vector<const campaign_point*> pending;
    for (const campaign_point& point : points) {
        if (store.has(point.index)) {
            ++summary.already_complete;
        } else {
            pending.push_back(&point);
        }
    }
    if (pending.empty()) {
        return summary;
    }

    // Graphs and models are shared across the grid: one graph per
    // (scenario, variant), one model per parameter combination, one
    // lambda_min per (graph, model) pair.
    std::map<std::string, sequencing_graph> graphs;
    std::map<std::pair<int, int>, std::unique_ptr<sonic_model>> models;
    std::map<std::string, int> lambda_mins;
    const auto graph_of = [&](const campaign_point& p) -> const
        sequencing_graph& {
        const std::string key =
            p.scenario + "/v" + std::to_string(p.variant);
        const auto it = graphs.find(key);
        if (it != graphs.end()) {
            return it->second;
        }
        return graphs
            .emplace(key, make_variant_graph(spec, p.scenario, p.variant))
            .first->second;
    };
    const auto model_of = [&](const campaign_point& p) -> const
        sonic_model& {
        const std::pair<int, int> key{p.adder_latency,
                                      p.mul_bits_per_cycle};
        const auto it = models.find(key);
        if (it != models.end()) {
            return *it->second;
        }
        return *models
                    .emplace(key, std::make_unique<sonic_model>(
                                      p.adder_latency, p.mul_bits_per_cycle))
                    .first->second;
    };

    batch_engine engine(batch_options{.jobs = options.jobs,
                                      .cache_capacity = 1024});
    const std::size_t wave_size =
        options.wave != 0
            ? options.wave
            : std::max<std::size_t>(32, 4 * engine.pool().size());

    struct wave_entry {
        const campaign_point* point = nullptr;
        int lambda = 0;
    };
    std::vector<wave_entry> wave;
    std::mutex record_mutex;
    engine.set_completion_hook([&](std::size_t index,
                                   const batch_engine::outcome& out) {
        const wave_entry& entry = wave[index];
        point_result r;
        r.index = entry.point->index;
        r.key = entry.point->key();
        r.lambda = entry.lambda;
        if (out.ok()) {
            r.latency = out.result->path.latency;
            r.area = out.result->path.total_area;
        } else {
            r.error = out.error;
        }
        const std::lock_guard<std::mutex> lock(record_mutex);
        store.record(r);
        ++summary.executed;
        if (!r.ok()) {
            ++summary.failed;
        }
    });

    for (std::size_t start = 0; start < pending.size();
         start += wave_size) {
        if (interrupt_requested()) {
            summary.interrupted = true;
            break;
        }
        const std::size_t end =
            std::min(pending.size(), start + wave_size);
        // Build the whole wave before the first submit: the completion
        // hook reads `wave` from pool threads as soon as a job resolves.
        wave.clear();
        for (std::size_t i = start; i < end; ++i) {
            const campaign_point& p = *pending[i];
            const sequencing_graph& graph = graph_of(p);
            const sonic_model& model = model_of(p);
            const std::string lkey =
                p.scenario + "/v" + std::to_string(p.variant) + "/a" +
                std::to_string(p.adder_latency) + "m" +
                std::to_string(p.mul_bits_per_cycle);
            auto lit = lambda_mins.find(lkey);
            if (lit == lambda_mins.end()) {
                lit = lambda_mins
                          .emplace(lkey, min_latency(graph, model))
                          .first;
            }
            wave.push_back(
                {&p, relaxed_lambda(lit->second,
                                    p.slack_percent / 100.0)});
        }
        for (const wave_entry& entry : wave) {
            static_cast<void>(engine.submit(graph_of(*entry.point),
                                            model_of(*entry.point),
                                            entry.lambda));
        }
        static_cast<void>(engine.drain());
    }

    store.flush_checkpoint();
    return summary;
}

} // namespace mwl
