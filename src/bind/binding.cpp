#include "bind/binding.hpp"

#include "support/error.hpp"

namespace mwl {

void finalize_binding(binding& b, std::size_t n_ops,
                      const wordlength_compatibility_graph& wcg)
{
    b.clique_of_op.assign(n_ops, clique_id::invalid());
    b.total_area = 0.0;
    for (std::size_t ci = 0; ci < b.cliques.size(); ++ci) {
        const binding_clique& k = b.cliques[ci];
        require(!k.ops.empty(), "binding clique must be non-empty");
        b.total_area += wcg.area(k.resource);
        for (const op_id o : k.ops) {
            require(o.value() < n_ops, "clique member out of range");
            require(!b.clique_of_op[o.value()].is_valid(),
                    "operation bound to two cliques");
            require(wcg.compatible(o, k.resource),
                    "clique resource not compatible with member (Eqn. 4)");
            b.clique_of_op[o.value()] = clique_id(ci);
        }
    }
    for (std::size_t i = 0; i < n_ops; ++i) {
        require(b.clique_of_op[i].is_valid(), "operation left unbound");
    }
}

res_id cheapest_common_resource(const wordlength_compatibility_graph& wcg,
                                std::span<const op_id> ops)
{
    res_id best = res_id::invalid();
    for (const res_id r : wcg.all_resources()) {
        bool covers_all = true;
        for (const op_id o : ops) {
            if (!wcg.compatible(o, r)) {
                covers_all = false;
                break;
            }
        }
        if (!covers_all) {
            continue;
        }
        if (!best.is_valid() || wcg.area(r) < wcg.area(best)) {
            best = r;
        }
    }
    return best;
}

} // namespace mwl
