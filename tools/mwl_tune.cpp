// mwl_tune -- error-budget-driven wordlength optimization driver.
//
// Reads a tune spec (src/wordlength/tune_spec.hpp) naming designs
// (registry scenarios and/or .mwl graph files), an output-noise budget
// sweep, and search knobs; runs the wordlength optimizer
// (src/wordlength/optimizer.hpp) once per (design x budget) with the
// real dpalloc allocator as the cost function, and reports the
// noise-vs-area frontier. All points of one design share one engine
// cache, so consecutive budgets answer most of each other's candidate
// evaluations from the LRU.
//
// Spec format (one keyword per line; '#' starts a comment):
//
//   scenario fir8 fir4            'all' = whole registry
//   graph FILE ...                .mwl graph files
//   budget 1e-6 1e-5 1e-4         required, positive, no duplicates
//   frac min=2 max=24
//   search seed=2001 max-steps=64 anneal=0 temp=0.05
//   gain model=unit|attenuating base-frac=8 cap=32
//   lambda slack=25
//
// Usage:
//   mwl_tune SPEC [--jobs N] [--json FILE] [--csv] [--cache N]
//   SPEC of '-' reads the spec from stdin
//
// Exit codes match the other tools: 0 all points tuned, 1 some point
// failed (infeasible budget / allocation failure), 2 usage or spec
// error, 3 interrupted -- SIGINT/SIGTERM finish the in-flight point,
// emit the partial frontier, and exit 3.
//
// The JSON report is deterministic byte for byte for a fixed spec (no
// wall-clock fields, and reuse counts the timing-independent
// cache-or-coalesced sum); timing goes to stdout only.

#include "engine/batch_engine.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "scenarios/scenarios.hpp"
#include "support/interrupt.hpp"
#include "support/parse_num.hpp"
#include "support/timer.hpp"
#include "wordlength/optimizer.hpp"
#include "wordlength/tune_spec.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_tune SPEC [options]\n"
        "  --jobs N     worker threads [hardware concurrency]\n"
        "  --json FILE  write the frontier + stats as JSON\n"
        "  --csv        CSV on stdout instead of the aligned table\n"
        "  --cache N    engine result-cache capacity [4096]\n"
        "  SPEC of '-' reads the spec from stdin\n"
        "spec lines:\n"
        "  scenario NAME ...   registry scenarios ('all' = every one)\n"
        "  graph FILE ...      .mwl graph files\n"
        "  budget V ...        output-noise budgets (required)\n"
        "  frac min=2 max=24\n"
        "  search seed=2001 max-steps=64 anneal=0 temp=0.05\n"
        "  gain model=unit|attenuating base-frac=8 cap=32\n"
        "  lambda slack=25\n"
        "SIGINT/SIGTERM finish the in-flight point and emit the\n"
        "partial frontier (exit 3) instead of dying with no output\n";
    std::exit(code);
}

/// One (design, budget) result row.
struct tune_point {
    std::string entry;
    double budget = 0.0;
    bool ok = false;
    bool ran = false;         ///< reached before an interrupt
    std::string detail;       ///< error text when !ok
    tuned_design design;
    std::size_t evaluations = 0;
    std::size_t reused = 0;
    bool front = false;       ///< on the noise-vs-area Pareto front
};

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

/// Within one design, a point is on the front iff no other successful
/// point has (noise <=, area <=) with at least one strict.
void mark_front(std::vector<tune_point>& points)
{
    for (tune_point& p : points) {
        if (!p.ok) {
            continue;
        }
        p.front = true;
        for (const tune_point& q : points) {
            if (&q == &p || !q.ok || q.entry != p.entry) {
                continue;
            }
            const bool no_worse = q.design.noise_power <= p.design.noise_power &&
                                  q.design.area <= p.design.area;
            const bool strictly = q.design.noise_power < p.design.noise_power ||
                                  q.design.area < p.design.area;
            if (no_worse && strictly) {
                p.front = false;
                break;
            }
        }
    }
}

} // namespace

int main(int argc, char** argv)
{
    install_interrupt_handler();

    std::string spec_file;
    std::size_t jobs = 0;
    std::string json_file;
    bool csv = false;
    std::size_t cache_capacity = 4096;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_tune: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                return parse_size_checked(text);
            } catch (const error&) {
                std::cerr << "mwl_tune: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        if (arg == "--jobs") {
            jobs = count_value();
        } else if (arg == "--json") {
            json_file = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--cache") {
            cache_capacity = count_value();
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "mwl_tune: unknown option " << arg << '\n';
            usage(2);
        } else {
            spec_file = arg;
        }
    }
    if (spec_file.empty()) {
        usage(2);
    }

    // ---- parse the spec --------------------------------------------------
    tune_spec spec;
    try {
        std::ifstream file_in;
        std::istream* in = &std::cin;
        if (spec_file != "-") {
            file_in.open(spec_file);
            if (!file_in) {
                std::cerr << "mwl_tune: cannot open " << spec_file << '\n';
                return 1;
            }
            in = &file_in;
        }
        spec = tune_spec::parse(*in);
    } catch (const spec_error& e) {
        std::cerr << "mwl_tune: " << e.what() << '\n';
        return 2;
    }

    try {
        // ---- load designs and decompose them for the search --------------
        struct design {
            std::string name;
            tune_problem problem;
        };
        std::vector<design> designs;
        designs.reserve(spec.entries.size());
        for (const tune_spec::entry& e : spec.entries) {
            sequencing_graph graph;
            if (!e.scenario.empty()) {
                graph = make_scenario(e.scenario).graph;
            } else {
                std::ifstream gf(e.graph_file);
                if (!gf) {
                    std::cerr << "mwl_tune: cannot open graph file "
                              << e.graph_file << '\n';
                    return 2;
                }
                graph = parse_graph(gf);
            }
            designs.push_back({e.name(),
                               make_tune_problem(graph, spec.gains,
                                                 spec.base_frac_bits,
                                                 spec.width_cap)});
        }

        // ---- run one optimization per (design x budget) -------------------
        const sonic_model model;
        thread_pool pool(jobs);
        batch_options engine_options;
        engine_options.cache_capacity = cache_capacity;
        batch_engine engine(pool, engine_options);

        stopwatch clock;
        std::vector<tune_point> points;
        points.reserve(designs.size() * spec.budgets.size());
        bool interrupted = false;
        for (const design& d : designs) {
            for (const double budget : spec.budgets) {
                tune_point p;
                p.entry = d.name;
                p.budget = budget;
                if (interrupted || interrupt_requested()) {
                    // Counted in the "completed k of n" total, but a
                    // partial report only contains points that ran.
                    interrupted = true;
                    points.push_back(std::move(p));
                    continue;
                }
                p.ran = true;
                optimizer_options options;
                options.noise.budget = budget;
                options.noise.min_frac_bits = spec.min_frac_bits;
                options.noise.max_frac_bits = spec.max_frac_bits;
                options.slack = spec.slack;
                options.seed = spec.seed;
                options.max_steps = spec.max_steps;
                options.anneal_iterations = spec.anneal_iterations;
                options.anneal_temp = spec.anneal_temp;
                options.batch_neighbors = true;
                try {
                    const tune_result r = optimize_wordlengths(
                        d.problem, model, options, engine);
                    p.ok = true;
                    p.design = r.best;
                    p.evaluations = r.stats.evaluations;
                    p.reused = r.stats.reused;
                    if (r.stats.interrupted) {
                        interrupted = true;
                    }
                } catch (const error& e) {
                    // An unreachable budget (or an unallocatable seed)
                    // fails its own point, not the sweep.
                    p.detail = e.what();
                }
                points.push_back(std::move(p));
            }
        }
        const double wall = clock.seconds();
        mark_front(points);

        // ---- report ------------------------------------------------------
        table t("mwl_tune frontier");
        t.header({"entry", "budget", "noise", "frac", "lambda", "latency",
                  "area", "status"});
        std::ostringstream json;
        json << "{\"results\":[";
        bool first = true;
        int failures = 0;
        std::size_t completed = 0;
        std::size_t total_evals = 0;
        std::size_t total_reused = 0;
        for (const tune_point& p : points) {
            if (!p.ran) {
                continue; // interrupted before this point: no row at all
            }
            ++completed;
            total_evals += p.evaluations;
            total_reused += p.reused;
            std::ostringstream budget_text;
            budget_text << p.budget;
            if (!p.ok) {
                ++failures;
                t.row({p.entry, budget_text.str(), "-", "-", "-", "-", "-",
                       "error: " + p.detail});
                json << (first ? "" : ",") << "{\"entry\":\""
                     << json_escape(p.entry) << "\",\"budget\":" << p.budget
                     << ",\"status\":\"error\",\"detail\":\""
                     << json_escape(p.detail) << "\"}";
                first = false;
                continue;
            }
            std::ostringstream noise_text;
            noise_text << p.design.noise_power;
            const char* status = p.front ? "front" : "dominated";
            t.row({p.entry, budget_text.str(), noise_text.str(),
                   table::num(static_cast<int>(p.design.total_frac)),
                   table::num(p.design.lambda),
                   table::num(p.design.latency),
                   table::num(p.design.area, 1), status});
            json << (first ? "" : ",") << "{\"entry\":\""
                 << json_escape(p.entry) << "\",\"budget\":" << p.budget
                 << ",\"noise\":" << p.design.noise_power
                 << ",\"frac_bits\":[";
            for (std::size_t i = 0; i < p.design.frac_bits.size(); ++i) {
                json << (i ? "," : "") << p.design.frac_bits[i];
            }
            json << "],\"total_frac\":" << p.design.total_frac
                 << ",\"lambda\":" << p.design.lambda
                 << ",\"latency\":" << p.design.latency
                 << ",\"area\":" << p.design.area
                 << ",\"evaluations\":" << p.evaluations
                 << ",\"reused\":" << p.reused
                 << ",\"status\":\"" << status << "\"}";
            first = false;
        }

        const double reuse_rate =
            total_evals > 0
                ? static_cast<double>(total_reused) /
                      static_cast<double>(total_evals)
                : 0.0;
        json << "],\"stats\":{\"points\":" << points.size()
             << ",\"completed_points\":" << completed
             << ",\"failures\":" << failures
             << ",\"interrupted\":" << (interrupted ? "true" : "false")
             << ",\"evaluations\":" << total_evals
             << ",\"reused\":" << total_reused
             << ",\"reuse_rate\":" << reuse_rate << "}}";

        if (csv) {
            t.print_csv(std::cout);
        } else {
            t.print(std::cout);
        }
        const batch_stats stats = engine.stats();
        std::cout << "\nsearch: " << total_evals << " evaluations, "
                  << total_reused << " reused ("
                  << table::num(reuse_rate * 100.0, 1) << "% of candidates)\n"
                  << "engine: " << stats.submitted << " jobs, "
                  << stats.executed << " executed, " << stats.cache_hits
                  << " cache hits, " << stats.coalesced << " coalesced, "
                  << stats.errors << " errors\n"
                  << "pool: " << pool.size() << " threads, "
                  << table::num(wall * 1e3, 1) << " ms\n";
        if (interrupted) {
            std::cout << "interrupted: completed " << completed << " of "
                      << points.size() << " points\n";
        }

        if (!json_file.empty()) {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << "mwl_tune: cannot write " << json_file << '\n';
                return 1;
            }
            out << json.str() << '\n';
            std::cout << "json written to " << json_file << '\n';
        }
        if (interrupted) {
            return interrupt_exit_code;
        }
        return failures == 0 ? 0 : 1;
    } catch (const error& e) {
        std::cerr << "mwl_tune: " << e.what() << '\n';
        return 1;
    }
}
