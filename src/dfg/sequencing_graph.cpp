#include "dfg/sequencing_graph.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <functional>
#include <queue>

namespace mwl {

op_id sequencing_graph::add_operation(op_shape shape, std::string name)
{
    const op_id id(ops_.size());
    ops_.push_back(operation{shape, std::move(name)});
    preds_.emplace_back();
    succs_.emplace_back();
    return id;
}

void sequencing_graph::add_dependency(op_id from, op_id to)
{
    check_id(from);
    check_id(to);
    require(from != to, "dependency cannot be a self-loop");

    auto& succ = succs_[from.value()];
    if (std::find(succ.begin(), succ.end(), to) != succ.end()) {
        return; // duplicate edge: idempotent
    }
    require(!reaches(to, from),
            "dependency " + std::to_string(from.value()) + " -> " +
                std::to_string(to.value()) + " would create a cycle");

    succ.push_back(to);
    preds_[to.value()].push_back(from);
    ++edge_count_;
}

const operation& sequencing_graph::op(op_id id) const
{
    check_id(id);
    return ops_[id.value()];
}

std::span<const op_id> sequencing_graph::predecessors(op_id id) const
{
    check_id(id);
    return preds_[id.value()];
}

std::span<const op_id> sequencing_graph::successors(op_id id) const
{
    check_id(id);
    return succs_[id.value()];
}

std::vector<op_id> sequencing_graph::all_ops() const
{
    std::vector<op_id> ids;
    ids.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
        ids.emplace_back(i);
    }
    return ids;
}

std::vector<op_id> sequencing_graph::topological_order() const
{
    // Kahn's algorithm; smallest-id-first tie-break makes the order
    // deterministic, which keeps every downstream heuristic reproducible.
    std::vector<std::size_t> in_degree(size());
    for (std::size_t i = 0; i < size(); ++i) {
        in_degree[i] = preds_[i].size();
    }

    std::priority_queue<op_id, std::vector<op_id>, std::greater<>> ready;
    for (std::size_t i = 0; i < size(); ++i) {
        if (in_degree[i] == 0) {
            ready.emplace(i);
        }
    }

    std::vector<op_id> order;
    order.reserve(size());
    while (!ready.empty()) {
        const op_id id = ready.top();
        ready.pop();
        order.push_back(id);
        for (const op_id succ : succs_[id.value()]) {
            if (--in_degree[succ.value()] == 0) {
                ready.push(succ);
            }
        }
    }
    MWL_ASSERT(order.size() == size()); // acyclic by construction
    return order;
}

bool sequencing_graph::reaches(op_id from, op_id to) const
{
    check_id(from);
    check_id(to);
    if (from == to) {
        return true;
    }
    std::vector<bool> seen(size(), false);
    std::vector<op_id> stack{from};
    seen[from.value()] = true;
    while (!stack.empty()) {
        const op_id at = stack.back();
        stack.pop_back();
        for (const op_id succ : succs_[at.value()]) {
            if (succ == to) {
                return true;
            }
            if (!seen[succ.value()]) {
                seen[succ.value()] = true;
                stack.push_back(succ);
            }
        }
    }
    return false;
}

void sequencing_graph::check_id(op_id id) const
{
    require(id.is_valid() && id.value() < size(),
            "operation id out of range");
}

} // namespace mwl
