// Solving the combined problem exactly with the in-repo ILP (the optimal
// reference of [5]) and measuring the heuristic's gap.
//
// Demonstrates the lower-level APIs: building the time-indexed model,
// inspecting its size, solving it with the branch-and-bound MILP solver,
// and decoding the solution back into a datapath. Also shows why the
// paper needed a heuristic at all: the model's variable count -- and the
// solve time -- grows with the latency constraint.
//
// Build & run:  ./build/examples/ilp_reference

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "ilp/formulation.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <iostream>

int main()
{
    using namespace mwl;

    const sonic_model model;
    const auto corpus = make_corpus(/*n_ops=*/7, /*count=*/3, model,
                                    /*base_seed=*/2001);

    table t("ILP optimum vs DPAlloc (7-op random graphs)");
    t.header({"graph", "lambda", "ILP vars", "ILP rows", "B&B nodes",
              "optimal area", "DPAlloc area", "gap %", "ILP ms",
              "heuristic ms"});

    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const corpus_entry& e = corpus[i];
        for (const double slack : {0.0, 0.2}) {
            const int lambda = relaxed_lambda(e.lambda_min, slack);

            stopwatch ilp_clock;
            const ilp_result opt = solve_ilp(e.graph, model, lambda);
            const double ilp_ms = ilp_clock.milliseconds();
            if (opt.status != mip_status::optimal) {
                continue;
            }
            require_valid(e.graph, model, opt.path, lambda);

            stopwatch heur_clock;
            const dpalloc_result heur = dpalloc(e.graph, model, lambda);
            const double heur_ms = heur_clock.milliseconds();
            require_valid(e.graph, model, heur.path, lambda);

            const double gap =
                (heur.path.total_area - opt.path.total_area) /
                opt.path.total_area * 100.0;
            t.row({table::num(static_cast<int>(i)), table::num(lambda),
                   table::num(static_cast<int>(opt.n_variables)),
                   table::num(static_cast<int>(opt.n_constraints)),
                   table::num(static_cast<int>(opt.nodes)),
                   table::num(opt.path.total_area, 0),
                   table::num(heur.path.total_area, 0), table::num(gap, 1),
                   table::num(ilp_ms, 1), table::num(heur_ms, 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nThe heuristic's area gap stays small while its runtime\n"
                 "is orders of magnitude below the exact solver's -- the\n"
                 "paper's Fig. 4/Fig. 5 story on a single page.\n";
    return 0;
}
