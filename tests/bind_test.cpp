// Unit tests for src/bind: BindSelect covering behaviour, Eqn. 4
// feasibility of emitted cliques, the growth pass, cheapest-resource
// wordlength selection and binding/schedule consistency.

#include "bind/bind_select.hpp"
#include "model/hardware_model.hpp"
#include "sched/incomplete_scheduler.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"
#include "wcg/wcg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mwl {
namespace {

sequencing_graph two_mults_graph()
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(12, 8), "o1");
    g.add_operation(op_shape::multiplier(20, 18), "o2");
    return g;
}

/// Binding invariants that hold for every valid bind_select output.
void expect_binding_valid(const wordlength_compatibility_graph& wcg,
                          const binding& b, const std::vector<int>& start,
                          const std::vector<int>& lat)
{
    const sequencing_graph& g = wcg.graph();
    std::vector<int> covered(g.size(), 0);
    double area = 0.0;
    for (const binding_clique& k : b.cliques) {
        area += wcg.area(k.resource);
        for (const op_id o : k.ops) {
            ++covered[o.value()];
            EXPECT_TRUE(wcg.compatible(o, k.resource)); // Eqn. 4
        }
        // pairwise chain (no time overlap at scheduled latencies)
        for (std::size_t i = 0; i < k.ops.size(); ++i) {
            for (std::size_t j = i + 1; j < k.ops.size(); ++j) {
                const op_id a = k.ops[i];
                const op_id c = k.ops[j];
                const bool disjoint =
                    start[a.value()] + lat[a.value()] <= start[c.value()] ||
                    start[c.value()] + lat[c.value()] <= start[a.value()];
                EXPECT_TRUE(disjoint);
            }
        }
    }
    for (const int count : covered) {
        EXPECT_EQ(count, 1);
    }
    EXPECT_DOUBLE_EQ(area, b.total_area);
}

TEST(BindSelect, SerializedMultsShareTheBigMultiplier)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    // Hand schedule: o1 at 0..5, o2 at 5..10 (upper bounds 5 and 5).
    const std::vector<int> start{0, 5};
    const std::vector<int> lat{5, 5};
    const binding b = bind_select(wcg, start, lat);
    expect_binding_valid(wcg, b, start, lat);
    ASSERT_EQ(b.cliques.size(), 1u);
    EXPECT_EQ(wcg.resource(b.cliques[0].resource),
              op_shape::multiplier(20, 18));
    EXPECT_DOUBLE_EQ(b.total_area, 360.0);
}

TEST(BindSelect, OverlappingMultsNeedTwoResources)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0, 0};
    const std::vector<int> lat{5, 5};
    const binding b = bind_select(wcg, start, lat);
    expect_binding_valid(wcg, b, start, lat);
    ASSERT_EQ(b.cliques.size(), 2u);
    // Wordlength selection: o1's own resource is the cheap one.
    double area = 0.0;
    for (const auto& k : b.cliques) {
        area += wcg.area(k.resource);
    }
    EXPECT_DOUBLE_EQ(area, 360.0 + 96.0); // mul20x18 + mul12x8
}

TEST(BindSelect, CheapestReassignmentPicksOwnShapes)
{
    // A lone small op must end on its own (cheapest) resource even though
    // the big resource also covers it.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(12, 8));
    g.add_operation(op_shape::multiplier(20, 18));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0, 10};
    const std::vector<int> lat{3, 5}; // native latencies, disjoint anyway
    const binding b = bind_select(wcg, start, lat);
    // Chain {o1, o2} exists (disjoint in time) and one resource covers
    // both -> single clique on the 20x18.
    ASSERT_EQ(b.cliques.size(), 1u);
    EXPECT_EQ(wcg.resource(b.cliques[0].resource),
              op_shape::multiplier(20, 18));
}

TEST(BindSelect, ReassignCheapestDisabledKeepsSelectionResource)
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(12, 8));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0};
    const std::vector<int> lat{5};
    bind_options opts;
    opts.reassign_cheapest = false;
    const binding b = bind_select(wcg, start, lat, opts);
    ASSERT_EQ(b.cliques.size(), 1u);
    // Ratio rule: |p|/cost favours the small resource already (1/96 >
    // 1/360), so even unreassigned it picks mul12x8.
    EXPECT_EQ(wcg.resource(b.cliques[0].resource),
              op_shape::multiplier(12, 8));
}

TEST(BindSelect, MixedKindsNeverShare)
{
    sequencing_graph g;
    g.add_operation(op_shape::adder(16));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0, 2};
    const std::vector<int> lat{2, 2};
    const binding b = bind_select(wcg, start, lat);
    expect_binding_valid(wcg, b, start, lat);
    EXPECT_EQ(b.cliques.size(), 2u);
}

TEST(BindSelect, LongSerialChainCollapsesToOneAdder)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(10));
    for (int i = 0; i < 5; ++i) {
        const op_id next = g.add_operation(op_shape::adder(4 + 2 * i));
        g.add_dependency(prev, next);
        prev = next;
    }
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    std::vector<int> start;
    std::vector<int> lat;
    for (std::size_t i = 0; i < g.size(); ++i) {
        start.push_back(static_cast<int>(2 * i));
        lat.push_back(2);
    }
    const binding b = bind_select(wcg, start, lat);
    expect_binding_valid(wcg, b, start, lat);
    ASSERT_EQ(b.cliques.size(), 1u);
    // Shared adder must cover the widest member (add12).
    EXPECT_EQ(wcg.resource(b.cliques[0].resource), op_shape::adder(12));
    EXPECT_EQ(b.cliques[0].ops.size(), 6u);
}

TEST(BindSelect, GrowthPassMergesCompatibleCliques)
{
    // Construct a schedule where greedy cover without growth leaves
    // mergeable cliques: three pairwise-chainable mults of equal shape
    // plus one odd-shaped op interleaved.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));  // 0
    g.add_operation(op_shape::multiplier(8, 8));  // 1
    g.add_operation(op_shape::multiplier(8, 8));  // 2
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0, 2, 4};
    const std::vector<int> lat{2, 2, 2};
    bind_options no_growth;
    no_growth.enable_growth = false;
    const binding with_growth = bind_select(wcg, start, lat);
    const binding without = bind_select(wcg, start, lat, no_growth);
    expect_binding_valid(wcg, with_growth, start, lat);
    expect_binding_valid(wcg, without, start, lat);
    // All three ops are one chain on one mul8x8 either way here, but the
    // growth version must never be worse.
    EXPECT_LE(with_growth.total_area, without.total_area);
    EXPECT_EQ(with_growth.cliques.size(), 1u);
}

TEST(BindSelect, GrowthNeverIncreasesArea)
{
    rng random(77);
    for (int trial = 0; trial < 20; ++trial) {
        tgff_options opts;
        opts.n_ops = 10;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const wordlength_compatibility_graph wcg(g, model);
        const incomplete_schedule_result sched = schedule_incomplete(wcg);
        const std::vector<int> upper = wcg.latency_upper_bounds();
        bind_options no_growth;
        no_growth.enable_growth = false;
        const binding grown = bind_select(wcg, sched.start, upper);
        const binding plain = bind_select(wcg, sched.start, upper, no_growth);
        expect_binding_valid(wcg, grown, sched.start, upper);
        expect_binding_valid(wcg, plain, sched.start, upper);
        EXPECT_LE(grown.total_area, plain.total_area + 1e-9)
            << "trial " << trial;
    }
}

TEST(BindSelect, UnscheduledOpThrows)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0, -1};
    const std::vector<int> lat{5, 5};
    EXPECT_THROW(static_cast<void>(bind_select(wcg, start, lat)),
                 precondition_error);
}

TEST(BindSelect, SizeMismatchThrows)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<int> start{0};
    const std::vector<int> lat{5, 5};
    EXPECT_THROW(static_cast<void>(bind_select(wcg, start, lat)),
                 precondition_error);
}

TEST(BindSelect, EmptyGraphYieldsEmptyBinding)
{
    sequencing_graph g;
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const binding b = bind_select(wcg, {}, {});
    EXPECT_TRUE(b.cliques.empty());
    EXPECT_DOUBLE_EQ(b.total_area, 0.0);
}

TEST(BindSelect, RandomSchedulesAlwaysProduceValidBindings)
{
    rng random(4242);
    for (int trial = 0; trial < 30; ++trial) {
        tgff_options opts;
        opts.n_ops = 3 + static_cast<std::size_t>(trial) % 12;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const wordlength_compatibility_graph wcg(g, model);
        const incomplete_schedule_result sched = schedule_incomplete(wcg);
        const std::vector<int> upper = wcg.latency_upper_bounds();
        const binding b = bind_select(wcg, sched.start, upper);
        expect_binding_valid(wcg, b, sched.start, upper);
    }
}

TEST(CheapestCommonResource, FindsJoinWhenPresent)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::multiplier(20, 4));
    const op_id b = g.add_operation(op_shape::multiplier(6, 18));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<op_id> ops{a, b};
    const res_id r = cheapest_common_resource(wcg, ops);
    ASSERT_TRUE(r.is_valid());
    EXPECT_EQ(wcg.resource(r), op_shape::multiplier(20, 6));
}

TEST(CheapestCommonResource, InvalidWhenKindsDiffer)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id b = g.add_operation(op_shape::multiplier(6, 6));
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    const std::vector<op_id> ops{a, b};
    EXPECT_FALSE(cheapest_common_resource(wcg, ops).is_valid());
}

TEST(FinalizeBinding, RejectsDoubleBinding)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    binding b;
    binding_clique k1;
    k1.resource = wcg.resources_for(op_id(0)).back();
    k1.ops = {op_id(0), op_id(0)};
    b.cliques.push_back(k1);
    EXPECT_THROW(finalize_binding(b, g.size(), wcg), precondition_error);
}

TEST(FinalizeBinding, RejectsUncoveredOp)
{
    const sequencing_graph g = two_mults_graph();
    const sonic_model model;
    const wordlength_compatibility_graph wcg(g, model);
    binding b;
    binding_clique k1;
    k1.resource = wcg.resources_for(op_id(0)).front();
    k1.ops = {op_id(0)};
    b.cliques.push_back(k1);
    EXPECT_THROW(finalize_binding(b, g.size(), wcg), precondition_error);
}

} // namespace
} // namespace mwl
