// Design-space exploration: Pareto sweep + local search + RTL costing.
//
// The workflow a designer would actually run on a multiple-wordlength
// kernel: sweep the latency constraint to get the area/latency frontier
// (core/pareto.hpp), polish each point with the validator-driven local
// search (improve/local_search.hpp), and price the winners at the
// register-transfer level including registers and muxes (rtl/netlist.hpp).
//
// Build & run:  ./build/examples/design_space

#include "core/pareto.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "improve/local_search.hpp"
#include "model/hardware_model.hpp"
#include "report/table.hpp"
#include "rtl/netlist.hpp"
#include "tgff/generator.hpp"

#include <iostream>

int main()
{
    using namespace mwl;

    // A 14-operation random kernel stands in for "your DSP block".
    rng random(0xD5921);
    tgff_options gopt;
    gopt.n_ops = 14;
    const sequencing_graph graph = generate_tgff(gopt, random);
    const sonic_model model;

    pareto_options popt;
    popt.max_slack = 0.6;
    const auto frontier = pareto_sweep(graph, model, popt);

    table t("Design space of a 14-op kernel (areas in model units)");
    t.header({"lambda", "latency", "FU area", "after local search",
              "FU+reg+mux", "#FUs", "#regs"});
    for (const pareto_point& p : frontier) {
        const improve_result polished =
            improve_datapath(graph, model, p.path, p.lambda);
        require_valid(graph, model, polished.path, p.lambda);
        const rtl_netlist net = build_rtl(graph, model, polished.path);
        t.row({table::num(p.lambda), table::num(p.latency),
               table::num(p.area, 0),
               table::num(polished.path.total_area, 0),
               table::num(net.total_area(), 0),
               table::num(static_cast<int>(polished.path.instances.size())),
               table::num(static_cast<int>(net.registers.size()))});
    }
    t.print(std::cout);

    std::cout << "\nEach row is one non-dominated allocation; pick by the "
                 "latency budget\nand read off the full RTL cost.\n";
    return 0;
}
