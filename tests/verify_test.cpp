// Unit tests for the differential verification harness (src/verify/):
// clean corpora pass for every allocator, the report counts add up, the
// parallel path is deterministic, and -- the acceptance property of the
// whole subsystem -- re-introducing either historical sign-extension bug
// via elaborate_options makes the harness report counterexamples.

#include "model/hardware_model.hpp"
#include "support/thread_pool.hpp"
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mwl {
namespace {

corpus_spec small_spec(std::size_t ops, std::size_t count,
                       std::uint64_t seed)
{
    corpus_spec spec;
    spec.n_ops = ops;
    spec.count = count;
    spec.seed = seed;
    return spec;
}

// ------------------------------------------------------------- inputs --

TEST(RandomSignedInputs, FillsExactlyTheUnboundPorts)
{
    sequencing_graph g;
    const op_id m = g.add_operation(op_shape::multiplier(8, 8));
    const op_id a = g.add_operation(op_shape::adder(16));
    g.add_dependency(m, a);
    rng random(1);
    const sim_inputs in = random_signed_inputs(g, random);
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[m.value()].size(), 2u); // source: both operands external
    EXPECT_EQ(in[a.value()].size(), 1u); // one predecessor, one external
    // They must feed the reference evaluator without complaint.
    EXPECT_NO_THROW(static_cast<void>(reference_evaluate(g, in)));
}

TEST(RandomSignedInputs, ProducesNegativeValuesAndRespectsWidths)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(6)); // [-32, 31]
    rng random(7);
    bool saw_negative = false;
    for (int k = 0; k < 64; ++k) {
        const sim_inputs in = random_signed_inputs(g, random);
        for (const std::int64_t v : in[a.value()]) {
            EXPECT_GE(v, -32);
            EXPECT_LE(v, 31);
            saw_negative |= v < 0;
        }
    }
    EXPECT_TRUE(saw_negative);
}

// ------------------------------------------------------------ harness --

TEST(Verify, CleanCorpusPassesForAllAllocators)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 4;
    const verify_report report =
        verify_corpus(small_spec(8, 10, 42), model, options);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.graphs, 10u);
    EXPECT_EQ(report.allocations, 30u); // heuristic + two baselines
    EXPECT_EQ(report.input_vectors, 30u * 4u);
    EXPECT_GT(report.value_checks, report.input_vectors);
}

TEST(Verify, IlpReferenceJoinsOnTinyGraphs)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 2;
    options.ilp_max_ops = 4;
    const verify_report report =
        verify_corpus(small_spec(4, 5, 11), model, options);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.graphs, 5u);
    EXPECT_EQ(report.allocations, 20u); // three heuristics + ilp, per graph
}

TEST(Verify, ParallelCorpusMatchesSerial)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 3;
    const corpus_spec spec = small_spec(9, 8, 2026);
    const verify_report serial = verify_corpus(spec, model, options);
    thread_pool pool(4);
    const verify_report parallel =
        verify_corpus(spec, model, options, &pool);
    EXPECT_EQ(parallel.graphs, serial.graphs);
    EXPECT_EQ(parallel.allocations, serial.allocations);
    EXPECT_EQ(parallel.input_vectors, serial.input_vectors);
    EXPECT_EQ(parallel.value_checks, serial.value_checks);
    EXPECT_EQ(parallel.ok(), serial.ok());
}

// -------------------------------------- the harness catches the bugs --

// Acceptance property: if the operand-extension fix is reverted (legacy
// zero-extension in the FU muxes), the differential harness must flag it
// on a mixed-width corpus with signed inputs.
TEST(Verify, CatchesRevertedOperandExtensionFix)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 8;
    options.elaborate.legacy_operand_extension = true;
    const verify_report report =
        verify_corpus(small_spec(10, 20, 2001), model, options);
    ASSERT_FALSE(report.ok());
    for (const counterexample& cx : report.counterexamples) {
        EXPECT_EQ(cx.stage, "rtl-interp");
        EXPECT_FALSE(cx.to_string().empty());
    }
}

// Same for the register-readback fix (results zero-extended into wider
// shared registers).
TEST(Verify, CatchesRevertedCaptureExtensionFix)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 8;
    options.elaborate.legacy_capture_extension = true;
    const verify_report report =
        verify_corpus(small_spec(10, 20, 2001), model, options);
    ASSERT_FALSE(report.ok());
    // The corrupted value is only visible downstream, so divergences may
    // surface per-op or at an output readback; both count.
    for (const counterexample& cx : report.counterexamples) {
        EXPECT_TRUE(cx.stage == "rtl-interp" || cx.stage == "rtl-output");
    }
}

TEST(Verify, CounterexampleRendersAllCoordinates)
{
    counterexample cx;
    cx.graph_name = "g";
    cx.allocator = "dpalloc";
    cx.input_index = 3;
    cx.stage = "rtl-interp";
    cx.op = op_id(5);
    cx.cycle = 7;
    cx.expected = -13;
    cx.actual = 243;
    const std::string text = cx.to_string();
    EXPECT_NE(text.find("dpalloc"), std::string::npos);
    EXPECT_NE(text.find("input 3"), std::string::npos);
    EXPECT_NE(text.find("op 5"), std::string::npos);
    EXPECT_NE(text.find("cycle 7"), std::string::npos);
    EXPECT_NE(text.find("-13"), std::string::npos);
    EXPECT_NE(text.find("243"), std::string::npos);
}

TEST(Verify, MaxCounterexamplesBoundsTheReport)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 8;
    options.max_counterexamples = 2;
    options.elaborate.legacy_operand_extension = true;
    const verify_report report =
        verify_corpus(small_spec(10, 20, 2001), model, options);
    ASSERT_FALSE(report.ok());
    EXPECT_LE(report.counterexamples.size(), 2u);
}

} // namespace
} // namespace mwl
