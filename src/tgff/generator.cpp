#include "tgff/generator.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

op_shape random_shape(const tgff_options& options, rng& random)
{
    const bool is_mul = random.chance(options.mul_fraction);
    if (is_mul) {
        const int a = random.uniform_int(options.min_width, options.max_width);
        const int b = random.uniform_int(options.min_width, options.max_width);
        return op_shape::multiplier(a, b);
    }
    return op_shape::adder(
        random.uniform_int(options.min_width, options.max_width));
}

} // namespace

sequencing_graph generate_tgff(const tgff_options& options, rng& random)
{
    require(options.n_ops >= 1, "graph must have at least one operation");
    require(options.min_width >= 1 && options.min_width <= options.max_width,
            "invalid wordlength range");
    require(options.mul_fraction >= 0.0 && options.mul_fraction <= 1.0,
            "mul_fraction must be a probability");
    require(options.attach_probability >= 0.0 &&
                options.attach_probability <= 1.0,
            "attach_probability must be a probability");
    require(options.max_fan_in >= 1, "max_fan_in must be >= 1");

    sequencing_graph graph;
    for (std::size_t i = 0; i < options.n_ops; ++i) {
        const op_id id = graph.add_operation(random_shape(options, random));
        if (i == 0 || !random.chance(options.attach_probability)) {
            continue; // independent root, a new TGFF chain
        }
        // Attach to up to max_fan_in distinct earlier operations. Sampling
        // earlier ids only keeps the graph acyclic by construction. With a
        // locality window the candidates are the most recent operations,
        // which keeps depth growing with n_ops (see generator.hpp).
        const std::size_t lo =
            options.locality_window != 0 &&
                    id.value() > options.locality_window
                ? id.value() - options.locality_window
                : 0;
        const int fan_in = random.uniform_int(1, options.max_fan_in);
        for (int k = 0; k < fan_in; ++k) {
            const op_id pred(random.uniform(lo, id.value() - 1));
            graph.add_dependency(pred, id); // duplicates are idempotent
        }
    }
    return graph;
}

tgff_options large_graph_preset(std::size_t n_ops)
{
    require(n_ops >= 1, "graph must have at least one operation");
    tgff_options options;
    options.n_ops = n_ops;
    options.attach_probability = 0.95;
    options.max_fan_in = 3;
    options.locality_window = 64;
    options.max_width = 32;
    return options;
}

} // namespace mwl
