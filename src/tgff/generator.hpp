// Random sequencing-graph generation "using an adaptation of the TGFF
// algorithm [8]" (paper §3).
//
// TGFF (Dick, Rhodes, Wolf 1998) grows task graphs by repeated fan-out
// expansion from a frontier, bounding in/out degree. This adaptation does
// the same at operation granularity and then decorates each operation with
// a kind (adder / multiplier) and uniformly drawn operand wordlengths --
// the quantities that matter to the multiple-wordlength problem. All
// randomness flows through mwl::rng, so a (seed, options) pair identifies a
// graph bit-for-bit on every platform.

#ifndef MWL_TGFF_GENERATOR_HPP
#define MWL_TGFF_GENERATOR_HPP

#include "dfg/sequencing_graph.hpp"
#include "support/rng.hpp"

#include <cstdint>

namespace mwl {

struct tgff_options {
    std::size_t n_ops = 10;
    /// Probability a generated operation is a multiplication.
    double mul_fraction = 0.5;
    /// Operand wordlengths are drawn uniformly from [min_width, max_width].
    int min_width = 4;
    int max_width = 24;
    /// Maximum dependencies into a new operation.
    int max_fan_in = 2;
    /// Probability that a new operation attaches to existing operations at
    /// all (otherwise it starts a new independent chain, TGFF-style).
    double attach_probability = 0.85;
    /// When > 0, dependencies are sampled from the most recent
    /// `locality_window` operations only, instead of the whole prefix.
    /// Whole-prefix sampling (the legacy 0 default, kept bit-identical)
    /// degenerates once n_ops reaches ~1000: depth plateaus around 20 no
    /// matter how large the graph gets, the root count grows linearly
    /// (~15% of ops), and early operations become unbounded fan-out hubs
    /// -- none of which resembles a deep DSP datapath. A window keeps
    /// depth proportional to n_ops and bounds expected fan-out.
    std::size_t locality_window = 0;
};

/// Deterministic preset for the large-graph scaling tier (|O| ~ 500-2000):
/// windowed attachment and a higher attach probability so depth scales
/// with n_ops instead of plateauing, plus a slightly wider wordlength
/// range so the resource universe keeps growing past |O| ~ 1000. The
/// (preset, seed) pair pins the graph bit-for-bit; bench/tests derive
/// seeds as large_graph_seed_base + n_ops.
[[nodiscard]] tgff_options large_graph_preset(std::size_t n_ops);

/// Base seed shared by the large-graph bench tier and its identity tests.
inline constexpr std::uint64_t large_graph_seed_base = 0x1a46e;

/// Generate one random sequencing graph. Throws `precondition_error` on
/// nonsensical options (zero sizes, inverted width range, probabilities
/// outside [0, 1]).
[[nodiscard]] sequencing_graph generate_tgff(const tgff_options& options,
                                             rng& random);

} // namespace mwl

#endif // MWL_TGFF_GENERATOR_HPP
