// Candidate resource-wordlength type extraction.
//
// Section 2.1 of the paper: "An algorithm for extracting all possible
// resource types from the set of operations is given in [5]." The letter [5]
// is not available, so we reconstruct the only set with the required
// property: a resource type is *useful* exactly when it is the smallest
// resource covering some subset of operations, i.e. the componentwise-max
// (join) of that subset's shapes. The set of all such joins is the closure
// of the operation shapes under pairwise join -- for adders simply the
// distinct widths, for multipliers a subset of the width_a x width_b grid.
// Every area-optimal allocation only ever uses resources from this closure
// (replacing any resource by the join of the operations bound to it never
// increases area and preserves feasibility), so the reconstruction is
// conservative: it cannot exclude an optimal solution.

#ifndef MWL_WCG_RESOURCE_SET_HPP
#define MWL_WCG_RESOURCE_SET_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/op_shape.hpp"

#include <span>
#include <vector>

namespace mwl {

/// Join-closure of `shapes`, deduplicated and deterministically ordered
/// (by kind, then ascending widths). Empty input -> empty output.
[[nodiscard]] std::vector<op_shape>
extract_resource_types(std::span<const op_shape> shapes);

/// Convenience overload over all operations of a sequencing graph.
[[nodiscard]] std::vector<op_shape>
extract_resource_types(const sequencing_graph& graph);

} // namespace mwl

#endif // MWL_WCG_RESOURCE_SET_HPP
