// Differential RTL verification harness.
//
// Closes the loop the ROADMAP asks for between allocator and RTL: for a
// graph (or a whole TGFF corpus) and random *signed* input vectors, every
// enabled allocator's datapath must satisfy
//
//     reference_evaluate == simulate_datapath == RTL interpretation
//
// op for op, plus primary-output readback from the shared register file.
// The reference is the bit-true fixed-point semantics (sim/simulator.hpp);
// the RTL side executes the same structural IR the Verilog printer emits
// (rtl/rtl_interp.hpp), so a divergence here is a value-incorrect module,
// not a modelling gap -- the FpSynt-style simulate-against-reference
// validation (arXiv:1307.8401) applied to every allocator we have. The
// first divergent (graph, allocator, input, op, cycle) tuple is reported
// as a counterexample; `verify_options::elaborate` can re-introduce the
// historical zero-extension bugs to prove the harness catches them.

#ifndef MWL_VERIFY_DIFFERENTIAL_HPP
#define MWL_VERIFY_DIFFERENTIAL_HPP

#include "analyze/analyze.hpp"
#include "model/hardware_model.hpp"
#include "rtl/elaborate.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tgff/corpus.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mwl {

struct verify_options {
    /// Random signed input vectors evaluated per allocation.
    std::size_t inputs_per_graph = 8;
    /// Seeds the input-vector streams (graph structure comes from the
    /// corpus spec's own seed).
    std::uint64_t seed = 2001;
    /// Latency relaxation over lambda_min for corpus entries.
    double slack = 0.25;
    bool use_heuristic = true;   ///< DPAlloc (core/dpalloc.hpp)
    bool use_two_stage = true;   ///< baseline/two_stage.hpp
    bool use_descending = true;  ///< baseline/descending.hpp
    /// Include the ILP reference for graphs with at most this many
    /// operations (0 disables it; it is exponential by design).
    std::size_t ilp_max_ops = 0;
    /// Elaboration knobs; the legacy flags reproduce the historical
    /// zero-extension bugs so tests can assert the harness catches them.
    elaborate_options elaborate;
    /// Stop collecting after this many counterexamples.
    std::size_t max_counterexamples = 8;
};

/// One divergence, pinned to the first place it was observed.
struct counterexample {
    std::string graph_name;
    std::string allocator;
    std::size_t input_index = 0;
    /// "validate" (static IR violation), "datapath-sim", "rtl-interp",
    /// or "rtl-output".
    std::string stage;
    op_id op;
    int cycle = -1; ///< capture cycle of the divergent value, if known
    std::int64_t expected = 0;
    std::int64_t actual = 0;
    std::string detail; ///< free-form (validator text, simulator error)

    [[nodiscard]] std::string to_string() const;
};

struct verify_report {
    std::size_t graphs = 0;
    std::size_t allocations = 0;   ///< (graph, allocator) pairs checked
    std::size_t input_vectors = 0; ///< vectors evaluated across allocations
    std::size_t value_checks = 0;  ///< individual value comparisons
    std::vector<counterexample> counterexamples;

    [[nodiscard]] bool ok() const { return counterexamples.empty(); }
    void merge(verify_report other);
};

/// Input-vector seed for entry `index` of a corpus seeded with `seed`.
/// verify_corpus and mwl_batch's corpus verify= entries share this
/// derivation, so a generated graph's input stream depends only on
/// (seed, corpus index), independent of corpus size or pool width; the
/// front-ends also apply it per file to explicit graph lists, where the
/// index is front-end-local (reproduce those through the same tool).
[[nodiscard]] constexpr std::uint64_t verify_input_seed(std::uint64_t seed,
                                                        std::size_t index)
{
    return seed * 0x100000001b3ULL + 0x9e3779b9ULL * (index + 1);
}

/// Random external operands for every unfilled port: each drawn at the
/// operation's native operand width, mixing uniform signed values with
/// the extremes (min, max, -1, 0) that flush out extension bugs.
[[nodiscard]] sim_inputs random_signed_inputs(const sequencing_graph& graph,
                                              rng& random);

/// Check one allocated datapath against the reference on `inputs`.
[[nodiscard]] verify_report verify_datapath(
    const sequencing_graph& graph, const std::string& graph_name,
    const std::string& allocator, const datapath& path,
    const hardware_model& model, const std::vector<sim_inputs>& inputs,
    const elaborate_options& elaborate_opts = {},
    std::size_t max_counterexamples = 8);

/// Allocate `graph` with every enabled allocator and check each result.
/// `input_seed` fixes the input-vector stream (defaults to options.seed).
[[nodiscard]] verify_report verify_graph(const sequencing_graph& graph,
                                         const std::string& graph_name,
                                         const hardware_model& model,
                                         int lambda,
                                         const verify_options& options);
[[nodiscard]] verify_report verify_graph(const sequencing_graph& graph,
                                         const std::string& graph_name,
                                         const hardware_model& model,
                                         int lambda,
                                         const verify_options& options,
                                         std::uint64_t input_seed);

/// Differentially verify a whole generated corpus; with `pool`, one task
/// per graph (deterministic: reports are merged in corpus order, and each
/// graph's input stream depends only on options.seed and its index).
[[nodiscard]] verify_report verify_corpus(const corpus_spec& spec,
                                          const hardware_model& model,
                                          const verify_options& options,
                                          thread_pool* pool = nullptr);

/// Static counterpart of verify_graph: allocate with every enabled
/// allocator and run the value-range analyzer (analyze_allocation) on each
/// result -- no input vectors executed. Finding locations are prefixed
/// "graph/allocator: " so merged corpus reports stay attributable.
/// `options.inputs_per_graph` and `options.seed` are ignored.
[[nodiscard]] analysis_report static_verify_graph(
    const sequencing_graph& graph, const std::string& graph_name,
    const hardware_model& model, int lambda, const verify_options& options);

/// Statically verify a whole generated corpus (verify_corpus without the
/// simulations); with `pool`, one task per graph, merged in corpus order.
[[nodiscard]] analysis_report static_verify_corpus(
    const corpus_spec& spec, const hardware_model& model,
    const verify_options& options, thread_pool* pool = nullptr);

} // namespace mwl

#endif // MWL_VERIFY_DIFFERENTIAL_HPP
