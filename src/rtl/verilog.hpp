// Structural Verilog emission for an allocated datapath.
//
// Emits a self-contained synthesisable module: one functional unit per
// datapath instance, the left-edge register file, operand/register
// multiplexing driven by a cycle counter ("one-hot in time" schedule
// controller), primary inputs for operands that are not produced inside
// the graph, and primary outputs for operations without consumers.
// Multi-cycle units hold their operand selection for the whole execution
// span, so plain combinational +/* bodies model the SONIC-style timing.

#ifndef MWL_RTL_VERILOG_HPP
#define MWL_RTL_VERILOG_HPP

#include "rtl/netlist.hpp"

#include <string>

namespace mwl {

/// Render the datapath as a Verilog-2001 module named `module_name`.
[[nodiscard]] std::string to_verilog(const sequencing_graph& graph,
                                     const datapath& path,
                                     const rtl_netlist& net,
                                     const std::string& module_name);

} // namespace mwl

#endif // MWL_RTL_VERILOG_HPP
