#include "engine/parallel_pareto.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace mwl {
namespace {

// One worker's share of a wave: a contiguous lambda range, the area of
// every design in it, and the *candidate* points -- those strictly below
// the chunk-prefix running minimum area. Candidacy is a superset of the
// serial sweep's admission: a point the serial sweep admits at lambda has
// area < best - eps, best never exceeds the running minimum of all earlier
// areas by more than eps, and the chunk prefix is a subset of "all
// earlier", so the point is strictly below its chunk's running minimum.
// Everything else can be discarded inside the worker (the datapaths are
// the memory-heavy part); the replay below re-applies the exact admission
// rule to the survivors.
struct sweep_chunk {
    int first_lambda = 0;
    std::vector<double> areas;
    std::vector<pareto_point> candidates;
};

void run_chunk(const sequencing_graph& graph, const hardware_model& model,
               const dpalloc_options& allocator, int first_lambda,
               int last_lambda, sweep_chunk& out)
{
    out.first_lambda = first_lambda;
    out.areas.reserve(static_cast<std::size_t>(last_lambda - first_lambda) +
                      1);
    double running_min = 0.0;
    for (int lambda = first_lambda; lambda <= last_lambda; ++lambda) {
        dpalloc_result r = dpalloc(graph, model, lambda, allocator);
        const double area = r.path.total_area;
        out.areas.push_back(area);
        if (out.areas.size() == 1 || area < running_min) {
            running_min = area;
            pareto_point point;
            point.lambda = lambda;
            point.latency = r.path.latency;
            point.area = area;
            point.path = std::move(r.path);
            out.candidates.push_back(std::move(point));
        }
    }
}

} // namespace

std::vector<pareto_point> parallel_pareto_sweep(
    const sequencing_graph& graph, const hardware_model& model,
    const pareto_options& options, thread_pool& pool)
{
    require(options.max_slack >= 0.0, "max_slack must be non-negative");
    require(options.patience >= 1, "patience must be >= 1");
    if (graph.empty()) {
        return {};
    }

    const int lambda_min = min_latency(graph, model);
    const int lambda_max = static_cast<int>(std::ceil(
        static_cast<double>(lambda_min) * (1.0 + options.max_slack)));

    std::vector<pareto_point> frontier;
    double best_area = std::numeric_limits<double>::infinity();
    int stale = 0;
    bool stopped = false;

    int next_lambda = lambda_min;
    // First wave: just wide enough that an immediately-flat area curve
    // triggers the patience stop without a second wave.
    int wave = std::max(static_cast<int>(pool.size()), options.patience + 1);
    while (!stopped && next_lambda <= lambda_max) {
        const int count = std::min(wave, lambda_max - next_lambda + 1);
        const int n_chunks =
            std::max(1, std::min(count, static_cast<int>(pool.size())));

        std::vector<sweep_chunk> chunks(static_cast<std::size_t>(n_chunks));
        task_group group(pool);
        for (int c = 0; c < n_chunks; ++c) {
            const int first = next_lambda + c * count / n_chunks;
            const int last = next_lambda + (c + 1) * count / n_chunks - 1;
            sweep_chunk& out = chunks[static_cast<std::size_t>(c)];
            group.run([&graph, &model, &options, first, last, &out] {
                run_chunk(graph, model, options.allocator, first, last, out);
            });
        }
        group.wait();

        // Replay the serial sweep's decision sequence over the wave, per
        // chunk: first a patience walk over the raw areas (the same
        // admission test the serial loop applies, tracking where it would
        // stop), then merge_frontiers over the candidates of the processed
        // prefix -- the dominance merge re-applies the identical admission
        // rule against the evolving frontier, whose best (= last) area
        // tracks `best_area` exactly, so the frontier evolves as the
        // serial loop's would.
        for (sweep_chunk& chunk : chunks) {
            std::size_t processed = chunk.areas.size();
            for (std::size_t i = 0; i < chunk.areas.size(); ++i) {
                if (chunk.areas[i] < best_area - pareto_area_epsilon) {
                    best_area = chunk.areas[i];
                    stale = 0;
                } else if (++stale >= options.patience) {
                    processed = i + 1; // the serial loop examines lambda i,
                    stopped = true;    // then breaks
                    break;
                }
            }
            const int end_lambda =
                chunk.first_lambda + static_cast<int>(processed);
            std::vector<pareto_point>& candidates = chunk.candidates;
            std::size_t keep = 0;
            while (keep < candidates.size() &&
                   candidates[keep].lambda < end_lambda) {
                ++keep;
            }
            candidates.resize(keep);
            merge_frontiers(frontier, std::move(candidates));
            if (stopped) {
                break;
            }
        }

        next_lambda += count;
        wave *= 2;
    }
    MWL_ASSERT(!frontier.empty());
    return frontier;
}

std::vector<pareto_point> parallel_pareto_sweep(const sequencing_graph& graph,
                                                const hardware_model& model,
                                                const pareto_options& options,
                                                std::size_t jobs)
{
    thread_pool pool(jobs);
    return parallel_pareto_sweep(graph, model, options, pool);
}

} // namespace mwl
