// Scheduling with incomplete wordlength information (paper §2.2).
//
// The scheduler is a latency-weighted list scheduler whose resource test is
// the paper's Eqn. 3 (reconstructed as Eqn. 3' -- see DESIGN.md §2.2):
// given the minimum-cardinality scheduling set S covering all operations,
// for every member s of S and control step t
//
//     sum over o in O(s) executing at t of  1/|S(o)|   <=   capacity(s)
//
// where S(o) = members of S compatible with o. Operations compatible with
// several members share their usage equally between them (the "division" in
// the paper). The accounting is done in exact integer arithmetic (scaled by
// the lcm of the |S(o)| values) so no epsilon tuning can change a schedule.
//
// With capacity 1 per member this is DPAlloc's maximal-sharing mode; the
// capacity parameter exists for the driver's escalation path (DESIGN.md,
// "completion for parallelism-starved instances").

#ifndef MWL_SCHED_INCOMPLETE_SCHEDULER_HPP
#define MWL_SCHED_INCOMPLETE_SCHEDULER_HPP

#include "sched/event_engine.hpp"
#include "sched/scheduling_set.hpp"
#include "support/arena.hpp"
#include "wcg/wcg.hpp"

#include <utility>
#include <vector>

namespace mwl {

struct incomplete_schedule_result {
    std::vector<int> start;             ///< start step per operation
    int length = 0;                     ///< makespan under upper-bound latencies
    std::vector<res_id> scheduling_set; ///< the S that was used
    bool cover_proven_minimum = true;
};

/// Cross-iteration state for schedule_incomplete: the event-engine buffers
/// and usage arena (so repeated passes allocate nothing) and the
/// scheduling-set memo keyed on the WCG edge version. One instance lives
/// for the duration of a DPAlloc run (core/dpalloc.cpp).
struct incomplete_sched_scratch {
    event_schedule_workspace ws;
    scheduling_set_cache cover_cache;
    /// S(o) as a flat CSR table: offsets here, row storage handed out by
    /// `arena` (rewound wholesale each call -- no per-op vectors).
    std::vector<std::uint32_t> members_off;
    std::vector<std::uint32_t> members_cursor;
    bump_arena arena;
    /// Signature-tournament fast path (see incomplete_scheduler.cpp):
    /// per-signature ready heaps of packed (priority, id) keys plus the
    /// signature table itself.
    std::vector<std::vector<std::uint64_t>> sig_heap;
    std::vector<std::uint64_t> sig_mask;
    std::vector<std::int64_t> sig_share;
    std::vector<std::uint32_t> sig_of_op;
    std::vector<int> sig_stuck;
    /// Lazy global min-heap over signature fronts: (front key, signature)
    /// entries, stale ones discarded on pop. Selection is O(log) per
    /// attempt instead of a scan over every signature.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> front_heap;
    std::vector<std::uint32_t> stuck_list; ///< signatures stuck at step t
    /// True iff ws.usage is known to be all zeros (the fast path restores
    /// exactly its committed windows before returning, so a looping caller
    /// never pays a full-arena clear).
    bool usage_zeroed = false;
};

/// Schedule all operations of `wcg.graph()` using the latency upper bounds
/// L_o derived from the current H edges. `capacity` is the number of
/// resource instances each scheduling-set member may represent (>= 1).
/// `scratch` (optional) carries reusable buffers and the scheduling-set
/// memo across calls; `engine` selects the event-driven engine or the
/// original full-rescan reference (identical output, see
/// sched/event_engine.hpp).
[[nodiscard]] incomplete_schedule_result schedule_incomplete(
    const wordlength_compatibility_graph& wcg, int capacity = 1,
    incomplete_sched_scratch* scratch = nullptr,
    sched_engine engine = sched_engine::event);

} // namespace mwl

#endif // MWL_SCHED_INCOMPLETE_SCHEDULER_HPP
