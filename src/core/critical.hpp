// Bound critical path (paper §2.4).
//
// When a scheduled-and-bound solution violates the latency constraint, the
// refinement step needs the subset of operations whose latency reduction
// could shorten the design. The paper augments the sequencing graph's edge
// set S with serialisation edges
//
//   S^b = { (o1, o2) : start(o1) + l(o1) == start(o2),
//           o1 and o2 bound to the same resource instance }
//
// (l = bound latency) and defines the *bound critical path* Q^b as the
// operations whose ASAP and ALAP times coincide with respect to the
// augmented graph, with the augmented critical-path length as the ALAP
// horizon.

#ifndef MWL_CORE_CRITICAL_HPP
#define MWL_CORE_CRITICAL_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"

#include <span>
#include <vector>

namespace mwl {

struct bound_critical_path {
    std::vector<op_id> ops;      ///< members of Q^b, ascending id
    int augmented_length = 0;    ///< critical-path length of the augmented graph
};

/// Compute Q^b for a (possibly constraint-violating) allocation.
[[nodiscard]] bound_critical_path compute_bound_critical_path(
    const sequencing_graph& graph, const datapath& path);

/// Reusable buffers for compute_bound_critical_path; pure scratch owned by
/// a looping caller (the DPAlloc refinement loop).
struct critical_path_scratch {
    std::vector<std::vector<std::size_t>> succs;
    std::vector<std::vector<std::size_t>> preds;
    std::vector<std::vector<std::size_t>> members;
    std::vector<int> asap;
    std::vector<int> alap;
};

/// As above, from the raw ingredients instead of a materialised datapath:
/// `start` / `bound_latencies` per operation and `instance_of_op` grouping
/// operations onto resource instances. The DPAlloc refinement loop uses
/// this form so it never has to assemble a datapath for an allocation it
/// is about to discard. `scratch` (optional) reuses buffers across calls.
[[nodiscard]] bound_critical_path compute_bound_critical_path(
    const sequencing_graph& graph, std::span<const int> start,
    std::span<const int> bound_latencies,
    std::span<const std::size_t> instance_of_op,
    critical_path_scratch* scratch = nullptr);

} // namespace mwl

#endif // MWL_CORE_CRITICAL_HPP
