// Quickstart: the paper's Fig. 1 effect on a three-operation graph.
//
// Two independent multiplications (12x12-bit and 8x4-bit) feed an addition.
// With the tightest latency constraint the allocator must run both
// multiplications in parallel on separate multipliers; given three cycles
// of slack, DPAlloc executes the small multiplication *on the large
// multiplier* (at the larger resource's latency) and saves its area -- the
// core multiple-wordlength trade the paper introduces.
//
// Build & run:  ./build/examples/quickstart

#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"
#include "model/hardware_model.hpp"

#include <iostream>

int main()
{
    using namespace mwl;

    // 1. Describe the computation as a sequencing graph with a-priori
    //    operand wordlengths.
    sequencing_graph graph;
    const op_id m1 = graph.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = graph.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id acc = graph.add_operation(op_shape::adder(12), "acc");
    graph.add_dependency(m1, acc);
    graph.add_dependency(m2, acc);

    // 2. Pick the hardware model (SONIC: adders 2 cycles, n x m multiplier
    //    ceil((n+m)/8) cycles; area = n resp. n*m).
    const sonic_model model;
    const int lambda_min = min_latency(graph, model);
    std::cout << "sequencing graph (" << graph.size()
              << " ops), lambda_min = " << lambda_min << " cycles\n\n";
    std::cout << to_dot(graph) << '\n';

    // 3. Allocate datapaths under different latency constraints.
    for (const int lambda : {lambda_min, lambda_min + 3}) {
        const dpalloc_result result = dpalloc(graph, model, lambda);
        require_valid(graph, model, result.path, lambda); // belt and braces
        std::cout << "lambda = " << lambda << ":\n"
                  << describe(result.path, graph);
        std::cout << "  (iterations " << result.stats.iterations
                  << ", refinements " << result.stats.refinements << ")\n\n";
    }

    std::cout << "With slack, m2 runs on the 12x12 multiplier at 3 cycles\n"
                 "instead of occupying its own 8x4 multiplier -- one\n"
                 "multiplier instead of two.\n";
    return 0;
}
