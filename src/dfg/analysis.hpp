// Schedule-independent timing analysis on sequencing graphs: ASAP / ALAP
// start times and critical-path length for a given per-operation latency
// assignment, plus the native-latency helpers used to derive the paper's
// minimum latency constraint lambda_min.

#ifndef MWL_DFG_ANALYSIS_HPP
#define MWL_DFG_ANALYSIS_HPP

#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"

#include <span>
#include <vector>

namespace mwl {

/// Latency of each operation when executed on the smallest resource able to
/// perform it (its own shape), indexed by op id.
[[nodiscard]] std::vector<int> native_latencies(const sequencing_graph& graph,
                                                const hardware_model& model);

/// Earliest start time of every operation with unlimited resources.
/// `latencies[o]` is the latency assumed for operation o (all >= 1).
[[nodiscard]] std::vector<int> asap_start_times(
    const sequencing_graph& graph, std::span<const int> latencies);

/// Latest start time of every operation such that everything finishes by
/// `horizon` control steps. Throws `infeasible_error` if `horizon` is below
/// the critical-path length.
[[nodiscard]] std::vector<int> alap_start_times(
    const sequencing_graph& graph, std::span<const int> latencies,
    int horizon);

/// Number of control steps used by a start-time assignment:
/// max over o of start[o] + latencies[o] (0 for the empty graph).
[[nodiscard]] int schedule_length(const sequencing_graph& graph,
                                  std::span<const int> latencies,
                                  std::span<const int> start_times);

/// Critical-path length (= ASAP makespan) under `latencies`.
[[nodiscard]] int critical_path_length(const sequencing_graph& graph,
                                       std::span<const int> latencies);

/// The paper's lambda_min: critical-path length when every operation runs at
/// its native latency. This is the tightest latency constraint for which a
/// datapath can exist.
[[nodiscard]] int min_latency(const sequencing_graph& graph,
                              const hardware_model& model);

} // namespace mwl

#endif // MWL_DFG_ANALYSIS_HPP
