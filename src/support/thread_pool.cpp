#include "support/thread_pool.hpp"

#include "support/error.hpp"

namespace mwl {

namespace {

// Identity of the current thread inside its pool, so a task that spawns
// subtasks pushes them onto its own deque (LIFO locality) instead of
// round-robin.
thread_local thread_pool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;

} // namespace

thread_pool::thread_pool(std::size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) {
            threads = 1;
        }
    }
    queues_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        queues_.push_back(std::make_unique<queue>());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

thread_pool::~thread_pool()
{
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
        ++epoch_;
    }
    sleep_cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void thread_pool::post(std::function<void()> task)
{
    std::size_t target;
    if (tl_pool == this) {
        target = tl_worker;
    } else {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        target = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    {
        const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        ++epoch_;
    }
    sleep_cv_.notify_one();
}

bool thread_pool::try_acquire(std::size_t home, std::function<void()>& out)
{
    const std::size_t n = queues_.size();
    // Own deque first, newest task (back); then steal oldest (front) from
    // the others, scanning the ring from the right neighbour.
    if (home < n) {
        queue& own = *queues_[home];
        const std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            return true;
        }
    }
    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t victim = (home + i) % n;
        if (victim == home) {
            continue;
        }
        queue& q = *queues_[victim];
        const std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.tasks.empty()) {
            out = std::move(q.tasks.front());
            q.tasks.pop_front();
            return true;
        }
    }
    return false;
}

bool thread_pool::run_one()
{
    const std::size_t home =
        tl_pool == this ? tl_worker : queues_.size(); // externals only steal
    std::function<void()> task;
    if (!try_acquire(home, task)) {
        return false;
    }
    task();
    return true;
}

void thread_pool::worker_loop(std::size_t self)
{
    tl_pool = this;
    tl_worker = self;
    for (;;) {
        // Read the epoch BEFORE scanning the queues: a post that lands
        // during or after an empty scan bumps the epoch past `seen`, so
        // the wait below returns immediately instead of missing the wake.
        std::uint64_t seen;
        {
            const std::lock_guard<std::mutex> lock(sleep_mutex_);
            seen = epoch_;
        }
        std::function<void()> task;
        if (try_acquire(self, task)) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (stop_) {
            // A racing post may have landed since the empty scan; drain
            // before exiting so no future is broken.
            lock.unlock();
            while (try_acquire(self, task)) {
                task();
            }
            return;
        }
        sleep_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    }
}

void task_group::wait()
{
    using namespace std::chrono_literals;
    for (std::future<void>& future : futures_) {
        while (future.wait_for(0s) != std::future_status::ready) {
            if (!pool_.run_one()) {
                // Nothing left to steal -- our task is running on another
                // worker; poll briefly rather than spin.
                future.wait_for(100us);
            }
        }
    }
    std::exception_ptr first;
    for (std::future<void>& future : futures_) {
        try {
            future.get();
        } catch (...) {
            if (!first) {
                first = std::current_exception();
            }
        }
    }
    futures_.clear();
    if (first) {
        std::rethrow_exception(first);
    }
}

void task_group::wait_nothrow() noexcept
{
    try {
        wait();
    } catch (...) {
        // Destructor path: the exception already surfaced through wait()
        // if the owner called it; an abandoned group only guarantees
        // completion, not delivery.
    }
}

} // namespace mwl
