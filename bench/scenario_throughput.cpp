// Scenario-corpus throughput: allocation rate of every allocator on the
// named DSP kernels (src/scenarios/), the workload arm the random-tgff
// benches cannot cover -- real filter/transform structures with long
// serial chains and coefficient-width spreads.
//
//   --graphs N    repetitions per (scenario, allocator) point [25]
//   --max-size N  bench only the N smallest scenarios (0 = all); the
//                 smoke run uses this to stay fast
//   --csv / --out FILE (JSON artifact, default
//                 BENCH_scenario_throughput.json for full runs)

#include "baseline/descending.hpp"
#include "baseline/two_stage.hpp"
#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <sstream>

int main(int argc, char** argv)
{
    using namespace mwl;
    const bench::bench_options opt =
        bench::parse_options(argc, argv, "scenario_throughput");

    const sonic_model model;
    std::vector<scenario> scenarios = all_scenarios();
    if (opt.max_size != 0 && opt.max_size < scenarios.size()) {
        std::stable_sort(scenarios.begin(), scenarios.end(),
                         [](const scenario& a, const scenario& b) {
                             return a.graph.size() < b.graph.size();
                         });
        scenarios.resize(opt.max_size);
    }
    const std::size_t reps = std::max<std::size_t>(1, opt.graphs);

    struct arm {
        const char* name;
        std::function<datapath(const sequencing_graph&, int)> allocate;
    };
    const arm arms[] = {
        {"dpalloc",
         [&](const sequencing_graph& g, int lambda) {
             return dpalloc(g, model, lambda).path;
         }},
        {"two_stage",
         [&](const sequencing_graph& g, int lambda) {
             return two_stage_allocate(g, model, lambda).path;
         }},
        {"descending",
         [&](const sequencing_graph& g, int lambda) {
             return descending_allocate(g, model, lambda);
         }},
    };

    table t("scenario corpus throughput (reps=" + std::to_string(reps) +
            ")");
    t.header({"scenario", "allocator", "ops", "lambda", "latency", "area",
              "ms/alloc", "alloc/s"});
    std::ostringstream json;
    json << "{\"bench\":\"scenario_throughput\"," << bench::env_json()
         << ",\"reps\":" << reps << ",\"points\":[";
    bool first = true;
    for (const scenario& s : scenarios) {
        const int lambda =
            relaxed_lambda(min_latency(s.graph, model), 0.25);
        for (const arm& a : arms) {
            datapath path;
            stopwatch clock;
            for (std::size_t r = 0; r < reps; ++r) {
                path = a.allocate(s.graph, lambda);
            }
            const double seconds = clock.seconds();
            const double per_second =
                seconds > 0.0 ? static_cast<double>(reps) / seconds : 0.0;
            t.row({s.name, a.name,
                   table::num(static_cast<int>(s.graph.size())),
                   table::num(lambda), table::num(path.latency),
                   table::num(path.total_area, 1),
                   table::num(seconds * 1e3 / static_cast<double>(reps), 3),
                   table::num(per_second, 1)});
            json << (first ? "" : ",") << "{\"scenario\":\"" << s.name
                 << "\",\"allocator\":\"" << a.name
                 << "\",\"ops\":" << s.graph.size()
                 << ",\"lambda\":" << lambda
                 << ",\"latency\":" << path.latency
                 << ",\"area\":" << path.total_area
                 << ",\"seconds\":" << seconds
                 << ",\"allocs_per_second\":" << per_second << "}";
            first = false;
        }
    }
    json << "]}";

    bench::emit(t, opt);
    std::cout << '\n' << json.str() << '\n';

    // Smoke runs (--max-size) don't clobber the checked-in artifact unless
    // an explicit --out asks for a file.
    if (opt.max_size != 0 && opt.out.empty()) {
        return 0;
    }
    const std::string out_path =
        opt.out.empty() ? "BENCH_scenario_throughput.json" : opt.out;
    std::ofstream file(out_path);
    if (file) {
        file << json.str() << '\n';
        std::cout << "json written to " << out_path << '\n';
    }
    return 0;
}
