// Binding data structures: a clique cover of the scheduled operations,
// each clique carrying the resource-wordlength type that implements it.
// One clique = one physical resource instance in the datapath.

#ifndef MWL_BIND_BINDING_HPP
#define MWL_BIND_BINDING_HPP

#include "support/ids.hpp"
#include "wcg/wcg.hpp"

#include <span>
#include <vector>

namespace mwl {

/// One physical resource instance and the operations it executes.
struct binding_clique {
    res_id resource;         ///< resource-wordlength type implementing it
    std::vector<op_id> ops;  ///< members, in chain (execution) order
};

/// A complete binding: disjoint cliques covering every operation.
struct binding {
    std::vector<binding_clique> cliques;
    std::vector<clique_id> clique_of_op; ///< indexed by op id
    double total_area = 0.0;             ///< sum of clique resource areas

    [[nodiscard]] const binding_clique& clique_of(op_id o) const
    {
        return cliques[clique_of_op[o.value()].value()];
    }

    /// Resource type an operation is bound to.
    [[nodiscard]] res_id resource_of(op_id o) const
    {
        return clique_of(o).resource;
    }
};

/// Recompute `clique_of_op` and `total_area` from `cliques`; checks that the
/// cliques are disjoint and cover all `n_ops` operations.
void finalize_binding(binding& b, std::size_t n_ops,
                      const wordlength_compatibility_graph& wcg);

/// Cheapest resource type compatible (current H edges) with every operation
/// in `ops`; returns res_id::invalid() if none exists (Eqn. 4 violated).
/// Ties broken towards smaller res_id.
[[nodiscard]] res_id cheapest_common_resource(
    const wordlength_compatibility_graph& wcg, std::span<const op_id> ops);

/// As above, reusing `hits_scratch` (resized internally) so a looping
/// caller performs no per-query allocation.
[[nodiscard]] res_id cheapest_common_resource(
    const wordlength_compatibility_graph& wcg, std::span<const op_id> ops,
    std::vector<std::uint32_t>& hits_scratch);

} // namespace mwl

#endif // MWL_BIND_BINDING_HPP
