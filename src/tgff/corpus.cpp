#include "tgff/corpus.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"
#include "support/parse_num.hpp"

#include <cmath>
#include <stdexcept>

namespace mwl {

std::vector<corpus_entry> make_corpus(std::size_t n_ops, std::size_t count,
                                      const hardware_model& model,
                                      std::uint64_t base_seed,
                                      const tgff_options& prototype)
{
    tgff_options options = prototype;
    options.n_ops = n_ops;

    std::vector<corpus_entry> corpus;
    corpus.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        // Seed derivation keeps entries independent of `count`: asking for
        // more graphs later extends the corpus without changing a prefix.
        rng random(base_seed * 0x100000001b3ULL + n_ops * 0x9e3779b9ULL + i);
        corpus_entry entry{generate_tgff(options, random), 0};
        entry.lambda_min = min_latency(entry.graph, model);
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

int relaxed_lambda(int lambda_min, double slack)
{
    require(slack >= 0.0, "slack must be non-negative");
    return static_cast<int>(
        std::ceil(static_cast<double>(lambda_min) * (1.0 + slack)));
}

corpus_spec corpus_spec::parse(const std::vector<std::string>& tokens)
{
    corpus_spec spec;
    for (const std::string& token : tokens) {
        const std::size_t eq = token.find('=');
        require(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                "corpus spec tokens must look like key=value, got '" + token +
                    "'");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        // parse_*_checked (support/parse_num.hpp): whole-token parses
        // only, negatives rejected where unsigned, range errors named --
        // so "ops=4x" and "count=-1" are diagnostics, not silent garbage.
        if (key == "ops") {
            spec.n_ops = parse_size_checked(value, token);
        } else if (key == "count") {
            spec.count = parse_size_checked(value, token);
        } else if (key == "seed") {
            spec.seed = parse_u64_checked(value, token);
        } else if (key == "mul-fraction") {
            spec.prototype.mul_fraction = parse_double_checked(value, token);
        } else if (key == "min-width") {
            spec.prototype.min_width = parse_int_checked(value, token);
        } else if (key == "max-width") {
            spec.prototype.max_width = parse_int_checked(value, token);
        } else {
            require(false, "unknown corpus spec key '" + key + "'");
        }
    }
    require(spec.n_ops >= 1, "corpus spec needs ops >= 1");
    require(spec.count >= 1, "corpus spec needs count >= 1");
    return spec;
}

std::vector<corpus_entry> make_corpus(const corpus_spec& spec,
                                      const hardware_model& model)
{
    return make_corpus(spec.n_ops, spec.count, model, spec.seed,
                       spec.prototype);
}

} // namespace mwl
