// Table 2: execution time for a corpus of 9-operation sequencing graphs as
// the latency constraint is relaxed (lambda/lambda_min in 1.00..1.15),
// heuristic vs ILP.
//
// Expected shape (the paper's headline scaling result): the ILP's time
// grows rapidly with the relaxation -- its variable count scales with
// lambda (2:07 -> 4:05 -> 15:55 -> >30:00 for 200 graphs on the paper's
// Pentium III) -- while the heuristic's time does not scale with the
// latency constraint at all.
//
// Default: 10 graphs. Paper corpus: --graphs 200.

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "ilp/formulation.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "table2_latency_scaling");
    if (opt.graphs == 25) {
        opt.graphs = 10; // ILP-heavy bench
    }

    const sonic_model model;
    const std::size_t n_ops = 9; // the paper's Table 2 problem size
    const auto corpus = make_corpus(n_ops, opt.graphs, model, opt.seed);

    table t("Table 2: total execution time for " +
            std::to_string(opt.graphs) + " nine-operation graphs");
    t.header({"lambda/lambda_min", "heuristic ms", "ILP s", "mean ILP vars",
              "ILP solved"});

    for (const double factor : {1.00, 1.05, 1.10, 1.15}) {
        double heur_s = 0.0;
        double ilp_s = 0.0;
        double vars = 0.0;
        std::size_t solved = 0;
        for (const corpus_entry& e : corpus) {
            const int lambda = relaxed_lambda(e.lambda_min, factor - 1.0);

            stopwatch heur_clock;
            static_cast<void>(dpalloc(e.graph, model, lambda));
            heur_s += heur_clock.seconds();

            stopwatch ilp_clock;
            mip_options mopt;
            mopt.time_limit_seconds = opt.ilp_time_limit;
            const ilp_result best = solve_ilp(e.graph, model, lambda, mopt);
            ilp_s += ilp_clock.seconds();
            vars += static_cast<double>(best.n_variables);
            solved += best.status == mip_status::optimal ? 1u : 0u;
        }
        t.row({table::num(factor, 2), table::num(heur_s * 1e3, 2),
               table::num(ilp_s, 2),
               table::num(vars / static_cast<double>(corpus.size()), 0),
               table::num(static_cast<int>(solved)) + "/" +
                   table::num(static_cast<int>(corpus.size()))});
    }
    bench::emit(t, opt);
    std::cout << "\n(paper: heuristic flat at ~3.5s/200 graphs, ILP 2:07 ->"
                 " >30:00 as the constraint relaxes;\n ILP seconds are"
                 " truncated wherever the per-instance time limit hit)\n";
    return 0;
}
