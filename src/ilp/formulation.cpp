#include "ilp/formulation.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"
#include "wcg/resource_set.hpp"

#include <algorithm>
#include <string>

namespace mwl {
namespace {

/// Per-operation minimum latency over compatible resources: the window
/// computation must stay valid for any (even non-monotone) model.
std::vector<int> min_latencies(const sequencing_graph& graph,
                               const std::vector<op_shape>& resources,
                               const hardware_model& model)
{
    std::vector<int> lat(graph.size(), 0);
    for (const op_id o : graph.all_ops()) {
        int best = 0;
        for (const op_shape& r : resources) {
            if (!r.covers(graph.shape(o))) {
                continue;
            }
            const int l = model.latency(r);
            best = best == 0 ? l : std::min(best, l);
        }
        MWL_ASSERT(best >= 1); // o's own shape is in the closure
        lat[o.value()] = best;
    }
    return lat;
}

} // namespace

ilp_model build_ilp(const sequencing_graph& graph,
                    const hardware_model& model, int lambda)
{
    require(lambda >= 0, "latency constraint must be non-negative");

    ilp_model m;
    m.resources = extract_resource_types(graph);
    if (graph.empty()) {
        return m;
    }

    const std::vector<int> lat_min = min_latencies(graph, m.resources, model);
    require_feasible(critical_path_length(graph, lat_min) <= lambda,
                     "latency constraint below the minimum achievable "
                     "latency of the sequencing graph");
    const std::vector<int> asap = asap_start_times(graph, lat_min);
    const std::vector<int> alap = alap_start_times(graph, lat_min, lambda);

    // n[r] count variables.
    m.count_var.resize(m.resources.size());
    for (std::size_t ri = 0; ri < m.resources.size(); ++ri) {
        // Never more instances than compatible operations.
        double max_count = 0.0;
        for (const op_id o : graph.all_ops()) {
            if (m.resources[ri].covers(graph.shape(o))) {
                max_count += 1.0;
            }
        }
        m.count_var[ri] = m.problem.add_variable(
            model.area(m.resources[ri]), 0.0, max_count, var_kind::integer,
            "n_" + m.resources[ri].to_string());
    }

    // x[o,r,t] start variables.
    for (const op_id o : graph.all_ops()) {
        for (std::size_t ri = 0; ri < m.resources.size(); ++ri) {
            const op_shape& r = m.resources[ri];
            if (!r.covers(graph.shape(o))) {
                continue;
            }
            const int lr = model.latency(r);
            const int t_hi = std::min(alap[o.value()], lambda - lr);
            for (int t = asap[o.value()]; t <= t_hi; ++t) {
                const std::size_t var = m.problem.add_binary(
                    0.0, "x_o" + std::to_string(o.value()) + "_" +
                             r.to_string() + "_t" + std::to_string(t));
                m.x_vars.push_back(
                    ilp_model::start_var{o, ri, t, var});
            }
        }
    }

    // Assignment rows.
    {
        std::vector<lp_row> rows(graph.size());
        for (lp_row& row : rows) {
            row.sense = row_sense::eq;
            row.rhs = 1.0;
        }
        for (const auto& xv : m.x_vars) {
            rows[xv.o.value()].terms.emplace_back(xv.var, 1.0);
        }
        for (std::size_t i = 0; i < rows.size(); ++i) {
            require_feasible(!rows[i].terms.empty(),
                             "operation has no feasible start under lambda");
            m.problem.add_row(std::move(rows[i]));
        }
    }

    // Precedence rows: finish(o1) - start(o2) <= 0.
    for (const op_id o1 : graph.all_ops()) {
        for (const op_id o2 : graph.successors(o1)) {
            lp_row row;
            row.sense = row_sense::le;
            row.rhs = 0.0;
            for (const auto& xv : m.x_vars) {
                if (xv.o == o1) {
                    const int lr = model.latency(m.resources[xv.resource_index]);
                    row.terms.emplace_back(
                        xv.var, static_cast<double>(xv.t + lr));
                } else if (xv.o == o2) {
                    row.terms.emplace_back(xv.var,
                                           -static_cast<double>(xv.t));
                }
            }
            m.problem.add_row(std::move(row));
        }
    }

    // Usage rows: running type-r operations at step t never exceed n[r].
    for (std::size_t ri = 0; ri < m.resources.size(); ++ri) {
        const int lr = model.latency(m.resources[ri]);
        for (int t = 0; t < lambda; ++t) {
            lp_row row;
            row.sense = row_sense::le;
            row.rhs = 0.0;
            for (const auto& xv : m.x_vars) {
                if (xv.resource_index == ri && xv.t > t - lr && xv.t <= t) {
                    row.terms.emplace_back(xv.var, 1.0);
                }
            }
            if (row.terms.empty()) {
                continue;
            }
            row.terms.emplace_back(m.count_var[ri], -1.0);
            m.problem.add_row(std::move(row));
        }
    }

    return m;
}

ilp_result solve_ilp(const sequencing_graph& graph,
                     const hardware_model& model, int lambda,
                     const mip_options& options)
{
    ilp_result result;
    if (graph.empty()) {
        result.status = mip_status::optimal;
        return result;
    }

    const ilp_model m = build_ilp(graph, model, lambda);
    result.n_variables = m.problem.n_vars();
    result.n_constraints = m.problem.n_rows();

    const mip_solution sol = solve_mip(m.problem, options);
    result.status = sol.status;
    result.nodes = sol.nodes;
    result.lp_iterations = sol.lp_iterations;
    if (sol.status != mip_status::optimal &&
        sol.status != mip_status::limit_feasible) {
        return result;
    }

    // Decode: chosen (resource type, start) per operation.
    struct choice {
        std::size_t resource_index = 0;
        int start = -1;
    };
    std::vector<choice> chosen(graph.size());
    for (const auto& xv : m.x_vars) {
        if (sol.x[xv.var] > 0.5) {
            MWL_ASSERT(chosen[xv.o.value()].start < 0); // assignment row
            chosen[xv.o.value()] = choice{xv.resource_index, xv.t};
        }
    }

    // First-fit interval colouring per resource type: ops sorted by start,
    // reuse the instance that frees up earliest.
    datapath& path = result.path;
    path.start.resize(graph.size());
    path.instance_of_op.resize(graph.size());
    for (const op_id o : graph.all_ops()) {
        MWL_ASSERT(chosen[o.value()].start >= 0);
        path.start[o.value()] = chosen[o.value()].start;
    }
    for (std::size_t ri = 0; ri < m.resources.size(); ++ri) {
        std::vector<op_id> ops;
        for (const op_id o : graph.all_ops()) {
            if (chosen[o.value()].resource_index == ri) {
                ops.push_back(o);
            }
        }
        if (ops.empty()) {
            continue;
        }
        std::sort(ops.begin(), ops.end(), [&](op_id a, op_id b) {
            if (path.start[a.value()] != path.start[b.value()]) {
                return path.start[a.value()] < path.start[b.value()];
            }
            return a < b;
        });
        const int lr = model.latency(m.resources[ri]);
        std::vector<std::size_t> open_instances; // indices into path.instances
        std::vector<int> free_at;                // matching free times
        for (const op_id o : ops) {
            const int s = path.start[o.value()];
            std::size_t slot = open_instances.size();
            for (std::size_t k = 0; k < open_instances.size(); ++k) {
                if (free_at[k] <= s &&
                    (slot == open_instances.size() ||
                     free_at[k] < free_at[slot])) {
                    slot = k;
                }
            }
            if (slot == open_instances.size()) {
                datapath_instance inst;
                inst.shape = m.resources[ri];
                inst.latency = lr;
                inst.area = model.area(m.resources[ri]);
                path.instances.push_back(std::move(inst));
                open_instances.push_back(path.instances.size() - 1);
                free_at.push_back(0);
                slot = open_instances.size() - 1;
            }
            const std::size_t inst_index = open_instances[slot];
            path.instances[inst_index].ops.push_back(o);
            path.instance_of_op[o.value()] = inst_index;
            free_at[slot] = s + lr;
        }
    }

    for (const datapath_instance& inst : path.instances) {
        path.total_area += inst.area;
    }
    for (const op_id o : graph.all_ops()) {
        path.latency = std::max(path.latency,
                                path.start[o.value()] + path.bound_latency(o));
    }
    return result;
}

} // namespace mwl
