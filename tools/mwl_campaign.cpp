// mwl_campaign -- crash-safe design-space-exploration campaign driver.
//
// Expands a declarative campaign spec (scenario set x lambda range x
// hardware-model parameter grid x optional wordlength perturbations, see
// src/campaign/campaign_spec.hpp for the grammar) into a deterministic
// point list, executes it through the batch engine, and records every
// completed point in a checkpointed on-disk store (append-only journal
// with per-record checksums + atomically replaced snapshots). A killed
// campaign -- kill -9, power loss, or the MWL_CRASH_AFTER fault-injection
// countdown -- resumes with `--resume`, skipping completed points and
// re-running only what was in flight; the final result set is
// byte-identical to an uninterrupted run (proven by
// tests/campaign_test.cpp and the CI kill-and-resume soak).
//
// Usage:
//   mwl_campaign --run DIR --spec FILE [--jobs N] [--checkpoint-every N]
//   mwl_campaign --resume DIR [--jobs N] [--checkpoint-every N]
//   mwl_campaign --status DIR
//   mwl_campaign --report DIR [--json FILE] [--csv]
//
// Exit codes: 0 campaign complete, 1 complete with failed points,
// 2 usage/spec/store errors, 3 interrupted (drained + checkpointed).

#include "campaign/campaign_runner.hpp"
#include "campaign/report.hpp"
#include "support/interrupt.hpp"
#include "support/timer.hpp"

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    (code == 0 ? std::cout : std::cerr) <<
        "usage: mwl_campaign MODE [options]\n"
        "modes (exactly one):\n"
        "  --run DIR --spec FILE  start a campaign in a fresh DIR\n"
        "  --resume DIR           continue a checkpointed campaign\n"
        "  --status DIR           print completion counters\n"
        "  --report DIR           print merged per-scenario Pareto fronts\n"
        "options:\n"
        "  --jobs N               worker threads [hardware concurrency]\n"
        "  --checkpoint-every N   journal records between snapshots [64]\n"
        "  --json FILE            write the canonical report JSON\n"
        "  --csv                  CSV tables on stdout\n"
        "exit codes: 0 complete, 1 complete with failed points,\n"
        "            2 usage/spec/store error, 3 interrupted\n"
        "crash injection: MWL_CRASH_AFTER=<n> exits (code 96) at the\n"
        "n-th store write; MWL_CRASH_TORN=1 tears that write.\n";
    std::exit(code);
}

struct cli {
    std::string mode;      ///< run | resume | status | report
    std::string dir;
    std::string spec_file;
    std::size_t jobs = 0;
    std::size_t checkpoint_every = 64;
    std::string json_file;
    bool csv = false;
};

cli parse_cli(int argc, char** argv)
{
    cli c;
    const auto set_mode = [&](const char* mode) {
        if (!c.mode.empty()) {
            std::cerr << "mwl_campaign: modes --" << c.mode << " and --"
                      << mode << " are mutually exclusive\n";
            usage(2);
        }
        c.mode = mode;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_campaign: missing value for " << arg
                          << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                if (!text.empty() && text[0] == '-') {
                    throw std::invalid_argument(text);
                }
                std::size_t used = 0;
                const std::size_t parsed = std::stoul(text, &used);
                if (used != text.size()) {
                    throw std::invalid_argument(text);
                }
                return parsed;
            } catch (const std::exception&) {
                std::cerr << "mwl_campaign: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        if (arg == "--run") {
            set_mode("run");
            c.dir = value();
        } else if (arg == "--resume") {
            set_mode("resume");
            c.dir = value();
        } else if (arg == "--status") {
            set_mode("status");
            c.dir = value();
        } else if (arg == "--report") {
            set_mode("report");
            c.dir = value();
        } else if (arg == "--spec") {
            c.spec_file = value();
        } else if (arg == "--jobs") {
            c.jobs = count_value();
        } else if (arg == "--checkpoint-every") {
            c.checkpoint_every = count_value();
            if (c.checkpoint_every == 0) {
                std::cerr << "mwl_campaign: --checkpoint-every must be"
                             " >= 1\n";
                usage(2);
            }
        } else if (arg == "--json") {
            c.json_file = value();
        } else if (arg == "--csv") {
            c.csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::cerr << "mwl_campaign: unknown option " << arg << '\n';
            usage(2);
        }
    }
    if (c.mode.empty()) {
        std::cerr << "mwl_campaign: pick a mode: --run, --resume,"
                     " --status or --report\n";
        usage(2);
    }
    if (c.mode == "run" && c.spec_file.empty()) {
        std::cerr << "mwl_campaign: --run needs --spec FILE\n";
        usage(2);
    }
    if (c.mode != "run" && !c.spec_file.empty()) {
        std::cerr << "mwl_campaign: --spec only applies to --run\n";
        usage(2);
    }
    return c;
}

void print_table(const table& t, bool csv)
{
    if (csv) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
}

void write_json(const std::string& path, const std::string& json)
{
    if (path.empty()) {
        return;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "mwl_campaign: cannot write " << path << '\n';
        std::exit(2);
    }
    out << json << '\n';
    std::cout << "json written to " << path << '\n';
}

int failed_points(const result_store& store)
{
    int failed = 0;
    for (const auto& [index, result] : store.results()) {
        if (!result.ok()) {
            ++failed;
        }
    }
    return failed;
}

/// Shared by --run and --resume once the store and point list exist.
int execute(const campaign_spec& spec,
            const std::vector<campaign_point>& points, result_store& store,
            const cli& c)
{
    stopwatch clock;
    campaign_run_options options;
    options.jobs = c.jobs;
    const campaign_run_summary summary =
        run_campaign(spec, points, store, options);
    const double wall = clock.seconds();

    const campaign_status status = status_of(points, store);
    print_table(render_status(status), c.csv);
    std::cout << "\nrun: " << summary.executed << " executed, "
              << summary.already_complete << " resumed from checkpoint, "
              << summary.failed << " failed, "
              << table::num(wall * 1e3, 1) << " ms";
    if (wall > 0.0 && summary.executed > 0) {
        std::cout << ", "
                  << table::num(
                         static_cast<double>(summary.executed) / wall, 1)
                  << " points/s";
    }
    std::cout << '\n';
    const store_load_stats& loaded = store.load_stats();
    if (loaded.dropped_tail) {
        std::cout << "recovered: torn journal tail discarded ("
                  << loaded.tail_error << ")\n";
    }
    if (summary.interrupted) {
        std::cout << "interrupted: " << status.completed << " of "
                  << status.total
                  << " points checkpointed; rerun --resume to finish\n";
        return interrupt_exit_code;
    }
    write_json(c.json_file, report_json(points, store));
    return failed_points(store) == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv)
{
    install_interrupt_handler();
    const cli c = parse_cli(argc, argv);
    try {
        if (c.mode == "run") {
            std::ifstream in(c.spec_file);
            if (!in) {
                std::cerr << "mwl_campaign: cannot open spec "
                          << c.spec_file << '\n';
                return 2;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            const std::string spec_text = std::move(buffer).str();
            const campaign_spec spec = campaign_spec::parse(spec_text);
            const std::vector<campaign_point> points = expand(spec);
            result_store store = result_store::create(
                c.dir, spec_text, points_fingerprint(points), points.size(),
                c.checkpoint_every);
            return execute(spec, points, store, c);
        }
        if (c.mode == "resume") {
            const std::string spec_text =
                result_store::load_spec_text(c.dir);
            const campaign_spec spec = campaign_spec::parse(spec_text);
            const std::vector<campaign_point> points = expand(spec);
            result_store store = result_store::open(
                c.dir, points_fingerprint(points), c.checkpoint_every);
            return execute(spec, points, store, c);
        }
        if (c.mode == "status") {
            const std::string spec_text =
                result_store::load_spec_text(c.dir);
            const campaign_spec spec = campaign_spec::parse(spec_text);
            const std::vector<campaign_point> points = expand(spec);
            const result_store store = result_store::open(
                c.dir, points_fingerprint(points), c.checkpoint_every);
            const campaign_status status = status_of(points, store);
            print_table(render_status(status), c.csv);
            const store_load_stats& loaded = store.load_stats();
            std::cout << "\nstore: " << loaded.snapshot_records
                      << " snapshot records, " << loaded.journal_records
                      << " journal records, " << loaded.duplicates
                      << " duplicates";
            if (loaded.dropped_tail) {
                std::cout << ", torn tail dropped (" << loaded.tail_error
                          << ")";
            }
            std::cout << '\n'
                      << (status.completed == status.total ? "complete"
                                                           : "incomplete")
                      << ": " << status.completed << " of " << status.total
                      << " points, " << status.failed << " failed\n";
            return 0;
        }
        // --report
        const std::string spec_text = result_store::load_spec_text(c.dir);
        const campaign_spec spec = campaign_spec::parse(spec_text);
        const std::vector<campaign_point> points = expand(spec);
        const result_store store = result_store::open(
            c.dir, points_fingerprint(points), c.checkpoint_every);
        print_table(render_frontiers(merge_scenario_frontiers(points,
                                                              store)),
                    c.csv);
        write_json(c.json_file, report_json(points, store));
        return 0;
    } catch (const error& e) {
        std::cerr << "mwl_campaign: " << e.what() << '\n';
        return 2;
    }
}
