// Campaign execution: the expanded point list, run through the batch
// engine, with a durable checkpoint around every job completion.
//
// Points already present in the result store are skipped outright (that
// is what resume means -- no allocation, no cache warm-up needed); the
// rest are executed in waves on the engine's work-stealing pool. The
// engine's completion hook journals each point the moment its outcome is
// known, so a crash loses at most the in-flight wave, which simply
// re-runs on resume. Between waves the runner polls the cooperative
// interrupt flag (support/interrupt.hpp): on SIGINT/SIGTERM it stops
// submitting, drains the wave in flight, flushes a final checkpoint and
// reports `interrupted` so the tool can exit with the distinct code.
//
// Every allocation here is deterministic, so a killed-and-resumed
// campaign converges to a result set byte-identical to an uninterrupted
// run -- the property tests/campaign_test.cpp proves under crash
// injection.

#ifndef MWL_CAMPAIGN_CAMPAIGN_RUNNER_HPP
#define MWL_CAMPAIGN_CAMPAIGN_RUNNER_HPP

#include "campaign/campaign_spec.hpp"
#include "campaign/result_store.hpp"

#include <cstddef>
#include <vector>

namespace mwl {

struct campaign_run_options {
    /// Worker threads (0 = hardware concurrency).
    std::size_t jobs = 0;
    /// Points submitted per drain wave (0 = auto: 4x pool size, min 32).
    /// The wave is the interrupt-latency / lost-work-on-crash unit.
    std::size_t wave = 0;
};

struct campaign_run_summary {
    std::size_t total = 0;            ///< points in the campaign
    std::size_t already_complete = 0; ///< skipped via the checkpoint
    std::size_t executed = 0;         ///< recorded by this run
    std::size_t failed = 0;           ///< of those, recorded as errors
    bool interrupted = false;         ///< drained out on SIGINT/SIGTERM
};

/// Execute every point of `points` not yet in `store`. The store must
/// belong to this point list (equal fingerprints -- the CLI enforces it).
[[nodiscard]] campaign_run_summary run_campaign(
    const campaign_spec& spec, const std::vector<campaign_point>& points,
    result_store& store, const campaign_run_options& options = {});

} // namespace mwl

#endif // MWL_CAMPAIGN_CAMPAIGN_RUNNER_HPP
