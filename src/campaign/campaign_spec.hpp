// Declarative DSE campaign specs.
//
// A campaign is the cross product the multiple-wordlength literature
// sweeps around this paper's allocator (FpSynt's cost-in-the-loop search,
// linaii's largedse driver): named scenarios x a lambda-relaxation range
// x a hardware-model parameter grid x optional wordlength perturbations.
// The spec is a small line-based text format (diagnostics carry 1-based
// line numbers, like mwl_batch manifests):
//
//   # comment
//   scenario fir4 fir8 dct8      one or more lines; 'all' = whole registry
//   lambda slack=0..30 step=10   integer percent relaxations of lambda_min
//   model adder-latency=1,2 mul-bits-per-cycle=4,8
//   perturb count=2 flips=2 seed=2001
//   tune budget=1e-6,1e-5 min-frac=2 max-frac=24 seed=2001
//        max-steps=32 anneal=0
//
// A `tune` line turns the campaign into a wordlength-optimization sweep:
// instead of allocating each point's graph as-is, the runner searches
// per-operation fractional widths meeting the point's noise budget
// (src/wordlength/optimizer.hpp) and records the tuned allocation. The
// budget list adds an innermost loop to the grid; specs without a tune
// line expand and fingerprint exactly as before.
//
// `expand()` turns a spec into the campaign's *deterministic point list*:
// a fixed nested-loop order (scenario, variant, adder-latency, mul-bits,
// slack) in which every point has a stable index and a stable human-
// readable key. Everything downstream -- the result store, resume, the
// report -- is keyed on that list, and `points_fingerprint()` pins it so
// a checkpoint can refuse a spec it was not built from.

#ifndef MWL_CAMPAIGN_CAMPAIGN_SPEC_HPP
#define MWL_CAMPAIGN_CAMPAIGN_SPEC_HPP

#include "dfg/sequencing_graph.hpp"
#include "support/error.hpp"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mwl {

/// A campaign spec that does not parse; `what()` carries "spec line N".
class spec_error : public error {
public:
    using error::error;
};

struct campaign_spec {
    /// Scenario names in declaration order (validated against the
    /// registry at parse time; duplicates rejected).
    std::vector<std::string> scenarios;

    /// Lambda relaxation range over lambda_min, inclusive, in integer
    /// percent: slack_lo, slack_lo + slack_step, ..., <= slack_hi.
    int slack_lo = 0;
    int slack_hi = 30;
    int slack_step = 10;

    /// Hardware-model grid: every (adder_latency, mul_bits_per_cycle)
    /// combination instantiates one sonic_model.
    std::vector<int> adder_latencies{2};
    std::vector<int> mul_bits_per_cycle{8};

    /// Wordlength perturbations: per scenario, `perturb_count` extra
    /// variants on top of variant 0 (the unperturbed graph), each with
    /// `perturb_flips` operand widths bumped by +-1, deterministically
    /// derived from (perturb_seed, scenario name, variant index).
    std::size_t perturb_count = 0;
    int perturb_flips = 2;
    std::uint64_t perturb_seed = 2001;

    /// Wordlength tuning (the `tune` line): empty = a plain allocation
    /// campaign. Non-empty = every grid point is optimized once per
    /// budget, with these search knobs.
    std::vector<double> tune_budgets;
    int tune_min_frac = 2;
    int tune_max_frac = 24;
    std::uint64_t tune_seed = 2001;
    std::size_t tune_max_steps = 32;
    std::size_t tune_anneal = 0;

    friend bool operator==(const campaign_spec&,
                           const campaign_spec&) = default;

    /// Parse a spec. Throws `spec_error` with the offending 1-based line
    /// number on unknown keywords/keys, bad values, duplicate sections,
    /// unknown scenario names, or a spec naming no scenarios.
    [[nodiscard]] static campaign_spec parse(std::istream& in);
    [[nodiscard]] static campaign_spec parse(const std::string& text);
};

/// One point of the expanded grid.
struct campaign_point {
    std::size_t index = 0;    ///< position in the deterministic list
    std::string scenario;
    std::size_t variant = 0;  ///< 0 = unperturbed
    int adder_latency = 2;
    int mul_bits_per_cycle = 8;
    int slack_percent = 0;
    /// Set on points of a tuning campaign (`tune` line): the output-noise
    /// budget this point optimizes to.
    bool tuned = false;
    double budget = 0.0;

    /// Stable id, e.g. "fir8/v1/a2m8/s10" -- plus "/b1e-06" on tuned
    /// points; unique within a campaign.
    [[nodiscard]] std::string key() const;
};

/// The spec's deterministic point list (see the ordering contract above).
[[nodiscard]] std::vector<campaign_point> expand(const campaign_spec& spec);

/// Content fingerprint of a point list (and the store format it implies);
/// equal fingerprints mean a checkpoint and a spec describe the same
/// campaign, so resuming is sound.
[[nodiscard]] std::uint64_t points_fingerprint(
    const std::vector<campaign_point>& points);

/// The graph of (scenario, variant): variant 0 is the registry scenario
/// itself, variant v >= 1 perturbs `perturb_flips` operand widths by +-1
/// under the spec's seed. Deterministic; equal inputs give byte-identical
/// graphs.
[[nodiscard]] sequencing_graph make_variant_graph(const campaign_spec& spec,
                                                  const std::string& scenario,
                                                  std::size_t variant);

} // namespace mwl

#endif // MWL_CAMPAIGN_CAMPAIGN_SPEC_HPP
