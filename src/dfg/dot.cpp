#include "dfg/dot.hpp"

#include <sstream>

namespace mwl {

std::string to_dot(const sequencing_graph& graph)
{
    std::ostringstream out;
    out << "digraph sequencing {\n";
    out << "  rankdir=TB;\n";
    out << "  node [shape=ellipse, fontname=\"Helvetica\"];\n";
    for (const op_id o : graph.all_ops()) {
        const operation& op = graph.op(o);
        out << "  n" << o.value() << " [label=\"";
        if (!op.name.empty()) {
            out << op.name << "\\n";
        }
        out << op.shape.to_string() << "\"];\n";
    }
    for (const op_id o : graph.all_ops()) {
        for (const op_id s : graph.successors(o)) {
            out << "  n" << o.value() << " -> n" << s.value() << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace mwl
