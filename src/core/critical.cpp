#include "core/critical.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <functional>
#include <queue>

namespace mwl {
namespace {

void build_augmented(const sequencing_graph& graph,
                     std::span<const int> start,
                     std::span<const int> bound_lat,
                     std::span<const std::size_t> instance_of_op,
                     critical_path_scratch& aug)
{
    // The augmented graph is only needed transiently; we materialise it as
    // adjacency lists over op indices (S edges plus S^b edges) in the
    // scratch's reused rows.
    const std::size_t n = graph.size();
    aug.succs.resize(std::max(aug.succs.size(), n));
    aug.preds.resize(std::max(aug.preds.size(), n));
    for (std::size_t o = 0; o < n; ++o) {
        aug.succs[o].clear();
        aug.preds[o].clear();
    }
    const auto add_edge = [&](std::size_t from, std::size_t to) {
        auto& row = aug.succs[from];
        if (std::find(row.begin(), row.end(), to) == row.end()) {
            row.push_back(to);
            aug.preds[to].push_back(from);
        }
    };
    for (const op_id o : graph.all_ops()) {
        for (const op_id s : graph.successors(o)) {
            add_edge(o.value(), s.value());
        }
    }

    // S^b: back-to-back pairs on the same instance. Within one instance,
    // sorted by start time, any qualifying pair (start1 + l1 == start2,
    // l1 >= 1) has start2 strictly after start1, so scanning forward from
    // each op until starts exceed the target finds every pair -- O(k log k)
    // per instance instead of the all-pairs O(k^2) probe.
    std::size_t n_instances = 0;
    for (const std::size_t inst : instance_of_op) {
        n_instances = std::max(n_instances, inst + 1);
    }
    auto& members = aug.members;
    members.resize(std::max(members.size(), n_instances));
    for (std::size_t i = 0; i < n_instances; ++i) {
        members[i].clear();
    }
    for (std::size_t o = 0; o < n; ++o) {
        members[instance_of_op[o]].push_back(o);
    }
    for (std::size_t mi = 0; mi < n_instances; ++mi) {
        auto& ops = members[mi];
        std::sort(ops.begin(), ops.end(), [&](std::size_t a, std::size_t b) {
            return start[a] < start[b];
        });
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const int target = start[ops[i]] + bound_lat[ops[i]];
            for (std::size_t j = i + 1;
                 j < ops.size() && start[ops[j]] <= target; ++j) {
                if (start[ops[j]] == target) {
                    add_edge(ops[i], ops[j]);
                }
            }
        }
    }
}

std::vector<std::size_t> topo_order(const critical_path_scratch& aug,
                                    std::size_t n)
{
    std::vector<std::size_t> in_degree(n, 0);
    for (std::size_t o = 0; o < n; ++o) {
        in_degree[o] = aug.preds[o].size();
    }
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<>>
        ready;
    for (std::size_t o = 0; o < n; ++o) {
        if (in_degree[o] == 0) {
            ready.push(o);
        }
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const std::size_t o = ready.top();
        ready.pop();
        order.push_back(o);
        for (const std::size_t s : aug.succs[o]) {
            if (--in_degree[s] == 0) {
                ready.push(s);
            }
        }
    }
    // S^b edges always point forward in time (start strictly increases
    // along them), so the augmented graph is acyclic.
    MWL_ASSERT(order.size() == n);
    return order;
}

} // namespace

bound_critical_path compute_bound_critical_path(
    const sequencing_graph& graph, std::span<const int> start,
    std::span<const int> bound_latencies,
    std::span<const std::size_t> instance_of_op,
    critical_path_scratch* scratch)
{
    const std::size_t n = graph.size();
    require(start.size() == n && bound_latencies.size() == n &&
                instance_of_op.size() == n,
            "schedule/binding vectors do not match graph");

    bound_critical_path result;
    if (n == 0) {
        return result;
    }

    critical_path_scratch local;
    critical_path_scratch& aug = scratch ? *scratch : local;
    build_augmented(graph, start, bound_latencies, instance_of_op, aug);
    const std::vector<std::size_t> order = topo_order(aug, n);

    const auto latency = [&](std::size_t o) { return bound_latencies[o]; };

    auto& asap = aug.asap;
    asap.assign(n, 0);
    for (const std::size_t o : order) {
        for (const std::size_t p : aug.preds[o]) {
            asap[o] = std::max(asap[o], asap[p] + latency(p));
        }
    }
    int length = 0;
    for (std::size_t o = 0; o < n; ++o) {
        length = std::max(length, asap[o] + latency(o));
    }
    result.augmented_length = length;

    auto& alap = aug.alap;
    alap.assign(n, 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::size_t o = *it;
        alap[o] = length - latency(o);
        for (const std::size_t s : aug.succs[o]) {
            alap[o] = std::min(alap[o], alap[s] - latency(o));
        }
    }

    for (std::size_t o = 0; o < n; ++o) {
        MWL_ASSERT(asap[o] <= alap[o]);
        if (asap[o] == alap[o]) {
            result.ops.emplace_back(o);
        }
    }
    return result;
}

bound_critical_path compute_bound_critical_path(const sequencing_graph& graph,
                                                const datapath& path)
{
    const std::size_t n = graph.size();
    require(path.start.size() == n && path.instance_of_op.size() == n,
            "datapath does not match graph");

    std::vector<int> bound_lat(n, 0);
    for (const op_id o : graph.all_ops()) {
        bound_lat[o.value()] = path.bound_latency(o);
    }
    return compute_bound_critical_path(graph, path.start, bound_lat,
                                       path.instance_of_op);
}

} // namespace mwl
