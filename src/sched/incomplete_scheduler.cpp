#include "sched/incomplete_scheduler.hpp"

#include "dfg/analysis.hpp"
#include "sched/priorities.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>

namespace mwl {
namespace {
/// Flat CSR view of the S(o) table (row storage lives in the scratch's
/// bump arena): row(o) lists the cover-member indices compatible with o,
/// ascending.
struct member_table {
    std::span<const std::uint32_t> off;
    std::span<const std::size_t> flat;

    [[nodiscard]] std::span<const std::size_t> row(std::size_t o) const
    {
        return flat.subspan(off[o], off[o + 1] - off[o]);
    }
};

/// Reference placement loop: the original per-step full-graph ready rescan.
/// Kept verbatim for the regression tests and the before/after bench; the
/// production path is the event engine below.
void reference_scan_pass(
    const sequencing_graph& graph, std::span<const int> upper,
    std::span<const int> priority, const member_table& members_of_op,
    std::span<std::int64_t> usage, int horizon, std::int64_t scale,
    std::int64_t budget, std::vector<int>& start)
{
    const auto usage_row = [&](std::size_t mi) {
        return usage.subspan(mi * static_cast<std::size_t>(horizon),
                             static_cast<std::size_t>(horizon));
    };
    std::size_t scheduled = 0;
    for (int t = 0; scheduled < graph.size(); ++t) {
        MWL_ASSERT(t < horizon);
        std::vector<op_id> ready;
        for (const op_id o : graph.all_ops()) {
            if (start[o.value()] >= 0) {
                continue;
            }
            bool ok = true;
            for (const op_id p : graph.predecessors(o)) {
                const int ps = start[p.value()];
                if (ps < 0 || ps + upper[p.value()] > t) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                ready.push_back(o);
            }
        }
        std::sort(ready.begin(), ready.end(), [&](op_id a, op_id b) {
            if (priority[a.value()] != priority[b.value()]) {
                return priority[a.value()] > priority[b.value()];
            }
            return a < b;
        });

        for (const op_id o : ready) {
            const auto members = members_of_op.row(o.value());
            const std::int64_t share =
                scale / static_cast<std::int64_t>(members.size());
            const int lat = upper[o.value()];
            bool fits = true;
            for (const std::size_t mi : members) {
                const auto row = usage_row(mi);
                for (int u = t; u < t + lat && fits; ++u) {
                    fits = row[static_cast<std::size_t>(u)] + share <= budget;
                }
                if (!fits) {
                    break;
                }
            }
            if (!fits) {
                continue;
            }
            start[o.value()] = t;
            ++scheduled;
            for (const std::size_t mi : members) {
                const auto row = usage_row(mi);
                for (int u = t; u < t + lat; ++u) {
                    row[static_cast<std::size_t>(u)] += share;
                }
            }
        }
    }
}

/// Signature-tournament fast path for the event engine. It exploits two
/// facts about the generic (priority desc, id asc) sweep:
///
/// 1. Placements only ever commit at the current sweep step t, so every
///    committed occupancy window starts at or before t. For u2 > u1 >= t a
///    window covering u2 therefore covers u1 as well: member occupancy at
///    or beyond t is NON-INCREASING in the step. A window [t, t+lat) fits
///    iff its FIRST step fits -- the feasibility probe is one comparison
///    per member instead of a lat-step scan.
/// 2. Operations with the same S(o) (the same "signature" of compatible
///    cover members) are interchangeable to the resource test: identical
///    members, identical share. Occupancy only grows during a step, so
///    once the highest-ranked operation of a signature fails at t, every
///    lower-ranked operation of that signature provably fails at t too.
///
/// The ready pool therefore becomes one binary heap of packed
/// (priority, id) keys per signature, and a step is a tournament over the
/// heap fronts: repeatedly take the globally smallest key among signatures
/// not yet stuck at t, probe it at step t only, and either place it or
/// mark its whole signature stuck. The tournament argmin comes from a lazy
/// global min-heap over signature fronts, so a selection costs O(log)
/// amortized instead of a scan over every signature. The placement
/// sequence -- and hence the schedule -- is bit-identical to the generic
/// sweep's (tests/sched_test.cpp, tests/incremental_regression_test.cpp,
/// tests/large_graph_identity_test.cpp).
void signature_tournament_pass(
    const sequencing_graph& graph, std::span<const int> upper,
    std::span<const int> priority, const member_table& members_of_op,
    std::span<std::int64_t> usage, int horizon, std::int64_t scale,
    std::int64_t budget, incomplete_sched_scratch& sc,
    std::vector<int>& start)
{
    const std::size_t n = graph.size();
    event_schedule_workspace& ws = sc.ws;
    ws.pending.assign(n, 0);
    ws.ready_step.assign(n, 0);
    if (ws.bucket.size() < static_cast<std::size_t>(horizon)) {
        ws.bucket.resize(static_cast<std::size_t>(horizon));
    }
    for (auto& b : ws.bucket) {
        b.clear();
    }

    // Signature table: one entry per distinct S(o), encoded as a member
    // bitmask (the caller guarantees <= 64 members). Linear lookup -- the
    // distinct-signature count is tiny next to n.
    sc.sig_mask.clear();
    sc.sig_share.clear();
    sc.sig_of_op.assign(n, 0);
    for (const op_id o : graph.all_ops()) {
        std::uint64_t mask = 0;
        for (const std::size_t mi : members_of_op.row(o.value())) {
            mask |= std::uint64_t{1} << mi;
        }
        std::uint32_t si = 0;
        while (si < sc.sig_mask.size() && sc.sig_mask[si] != mask) {
            ++si;
        }
        if (si == sc.sig_mask.size()) {
            sc.sig_mask.push_back(mask);
            sc.sig_share.push_back(
                scale /
                static_cast<std::int64_t>(members_of_op.row(o.value()).size()));
        }
        sc.sig_of_op[o.value()] = si;
    }
    const std::size_t n_sigs = sc.sig_mask.size();
    if (sc.sig_heap.size() < n_sigs) {
        sc.sig_heap.resize(n_sigs);
    }
    for (auto& h : sc.sig_heap) {
        h.clear();
    }
    sc.sig_stuck.assign(n_sigs, -1); // stamped with t when stuck at t

    for (const op_id o : graph.all_ops()) {
        const std::size_t n_preds = graph.predecessors(o).size();
        ws.pending[o.value()] = static_cast<int>(n_preds);
        if (n_preds == 0) {
            ws.bucket[0].push_back(o);
        }
    }

    // Min-heap over packed keys: complementing the priority makes larger
    // priorities smaller keys, and the id in the low bits breaks ties
    // ascending -- the reference (priority desc, id asc) total order.
    const auto key_of = [&](op_id o) {
        return (static_cast<std::uint64_t>(
                    ~static_cast<std::uint32_t>(priority[o.value()]))
                << 32) |
               static_cast<std::uint64_t>(o.value());
    };
    const auto heap_greater = std::greater<std::uint64_t>{};

    // Global selection structure: a lazy min-heap of (front key, signature)
    // entries. Invariant: every signature with a non-empty ready heap that
    // is not stuck at the current step has an entry carrying its CURRENT
    // front (an entry is pushed on every front change; signatures stuck at
    // t re-enter when t advances). Keys are unique, so an entry is live iff
    // it equals its signature's front; stale duplicates are discarded on
    // pop. Selection therefore returns exactly the linear scan's argmin.
    auto& fronts = sc.front_heap;
    auto& stuck_list = sc.stuck_list;
    fronts.clear();
    stuck_list.clear();
    const auto front_greater = [](const std::pair<std::uint64_t, std::uint32_t>& a,
                                  const std::pair<std::uint64_t, std::uint32_t>& b) {
        return a.first > b.first;
    };
    const auto push_front = [&](std::uint32_t si) {
        fronts.emplace_back(sc.sig_heap[si].front(), si);
        std::push_heap(fronts.begin(), fronts.end(), front_greater);
    };

    std::size_t scheduled = 0;
    for (int t = 0; scheduled < n; ++t) {
        MWL_ASSERT(t < horizon);
        for (const std::uint32_t si : stuck_list) {
            if (!sc.sig_heap[si].empty()) {
                push_front(si);
            }
        }
        stuck_list.clear();
        auto& arrivals = ws.bucket[static_cast<std::size_t>(t)];
        for (const op_id o : arrivals) {
            const std::uint64_t key = key_of(o);
            auto& heap = sc.sig_heap[sc.sig_of_op[o.value()]];
            heap.push_back(key);
            std::push_heap(heap.begin(), heap.end(), heap_greater);
            if (heap.front() == key) { // new front
                push_front(sc.sig_of_op[o.value()]);
            }
        }
        arrivals.clear();

        for (;;) {
            std::uint64_t best_key = 0;
            std::uint32_t best_sig = 0;
            bool found = false;
            while (!fronts.empty()) {
                const auto top = fronts.front();
                std::pop_heap(fronts.begin(), fronts.end(), front_greater);
                fronts.pop_back();
                const std::uint32_t si = top.second;
                if (sc.sig_stuck[si] == t || sc.sig_heap[si].empty() ||
                    sc.sig_heap[si].front() != top.first) {
                    continue; // stuck this step (re-enters at t+1) or stale
                }
                best_key = top.first;
                best_sig = si;
                found = true;
                break;
            }
            if (!found) {
                break;
            }
            const std::int64_t share = sc.sig_share[best_sig];
            const op_id o{static_cast<std::size_t>(best_key & 0xffffffffU)};
            const auto members = members_of_op.row(o.value());
            bool fits = true;
            for (const std::size_t mi : members) {
                // First-step probe only: occupancy beyond t is
                // non-increasing, so step t dominates the whole window.
                if (usage[mi * static_cast<std::size_t>(horizon) +
                          static_cast<std::size_t>(t)] +
                        share >
                    budget) {
                    fits = false;
                    break;
                }
            }
            if (!fits) {
                sc.sig_stuck[best_sig] = t;
                stuck_list.push_back(best_sig);
                continue;
            }
            auto& heap = sc.sig_heap[best_sig];
            std::pop_heap(heap.begin(), heap.end(), heap_greater);
            heap.pop_back();
            if (!heap.empty()) {
                push_front(best_sig); // front changed by the pop
            }
            const int lat = upper[o.value()];
            start[o.value()] = t;
            ++scheduled;
            for (const std::size_t mi : members) {
                const std::size_t base = mi * static_cast<std::size_t>(horizon);
                for (int u = t; u < t + lat; ++u) {
                    usage[base + static_cast<std::size_t>(u)] += share;
                }
            }
            const int done = t + lat;
            for (const op_id s : graph.successors(o)) {
                ws.ready_step[s.value()] =
                    std::max(ws.ready_step[s.value()], done);
                if (--ws.pending[s.value()] == 0) {
                    ws.bucket[static_cast<std::size_t>(
                                  ws.ready_step[s.value()])]
                        .push_back(s);
                }
            }
        }
    }

    // Restore the all-zero arena invariant (see schedule_incomplete): undo
    // exactly the committed windows -- O(sum lat x |S(o)|), a fraction of a
    // full-arena memset.
    for (const op_id o : graph.all_ops()) {
        const std::int64_t share = sc.sig_share[sc.sig_of_op[o.value()]];
        const int s = start[o.value()];
        const int lat = upper[o.value()];
        for (const std::size_t mi : members_of_op.row(o.value())) {
            const std::size_t base = mi * static_cast<std::size_t>(horizon);
            for (int u = s; u < s + lat; ++u) {
                usage[base + static_cast<std::size_t>(u)] -= share;
                MWL_ASSERT(usage[base + static_cast<std::size_t>(u)] >= 0);
            }
        }
    }
}

} // namespace

incomplete_schedule_result schedule_incomplete(
    const wordlength_compatibility_graph& wcg, int capacity,
    incomplete_sched_scratch* scratch, sched_engine engine)
{
    require(capacity >= 1, "scheduling-set member capacity must be >= 1");

    const sequencing_graph& graph = wcg.graph();
    incomplete_schedule_result result;
    result.start.assign(graph.size(), -1);
    if (graph.empty()) {
        return result;
    }

    incomplete_sched_scratch local;
    incomplete_sched_scratch& sc = scratch ? *scratch : local;

    const scheduling_set_result cover =
        min_scheduling_set(wcg, sc.cover_cache);
    result.scheduling_set = cover.members;
    result.cover_proven_minimum = cover.proven_minimum;
    const std::size_t n_members = cover.members.size();
    MWL_ASSERT(n_members >= 1);

    // S(o): indices into cover.members compatible with o, ascending -- a
    // flat CSR table (count, prefix-sum, fill) whose row storage comes from
    // the scratch's bump arena: one rewind per call instead of |O| vectors.
    sc.arena.reset();
    auto& off = sc.members_off;
    off.assign(graph.size() + 1, 0);
    if (engine == sched_engine::reference_scan) {
        // Pre-incremental construction: probe every (operation, member)
        // pair -- O(N * M).
        for (const op_id o : graph.all_ops()) {
            for (std::size_t mi = 0; mi < n_members; ++mi) {
                if (wcg.compatible(o, cover.members[mi])) {
                    ++off[o.value() + 1];
                }
            }
        }
    } else {
        // One pass over the members' O(s) adjacency lists -- O(E).
        for (std::size_t mi = 0; mi < n_members; ++mi) {
            for (const op_id o : wcg.ops_for(cover.members[mi])) {
                ++off[o.value() + 1];
            }
        }
    }
    for (std::size_t i = 1; i < off.size(); ++i) {
        off[i] += off[i - 1];
    }
    const std::span<std::size_t> flat =
        sc.arena.alloc<std::size_t>(off.back());
    auto& cursor = sc.members_cursor;
    cursor.assign(off.begin(), off.end() - 1);
    if (engine == sched_engine::reference_scan) {
        for (const op_id o : graph.all_ops()) {
            for (std::size_t mi = 0; mi < n_members; ++mi) {
                if (wcg.compatible(o, cover.members[mi])) {
                    flat[cursor[o.value()]++] = mi;
                }
            }
        }
    } else {
        for (std::size_t mi = 0; mi < n_members; ++mi) {
            for (const op_id o : wcg.ops_for(cover.members[mi])) {
                flat[cursor[o.value()]++] = mi;
            }
        }
    }
    const member_table members_of_op{off, flat};
    for (const op_id o : graph.all_ops()) {
        MWL_ASSERT(!members_of_op.row(o.value()).empty()); // S is a cover
    }

    // Exact fractional accounting: scale everything by the lcm of the
    // |S(o)| values, so each op contributes scale/|S(o)| integer units to
    // each of its members, against a budget of capacity*scale per member.
    std::int64_t scale = 1;
    for (const op_id o : graph.all_ops()) {
        scale = std::lcm(scale, static_cast<std::int64_t>(
                                    members_of_op.row(o.value()).size()));
    }
    const std::int64_t budget = static_cast<std::int64_t>(capacity) * scale;

    const std::vector<int> upper = wcg.latency_upper_bounds();
    const std::vector<int> priority = critical_path_priorities(graph, upper);

    const int horizon = serial_horizon(upper);
    // usage[mi * horizon + t]: scaled usage of member mi during step t,
    // one flat arena reused across calls through the scratch.
    auto& usage = sc.ws.usage;

    if (engine == sched_engine::event && n_members <= 64) {
        MWL_ASSERT(graph.size() <= 0xffffffffU); // packed-key id width
        // All-zero invariant: the fast path re-zeroes exactly the windows
        // it committed before returning (signature_tournament_pass), so a
        // looping caller never pays the full-arena memset -- the arena only
        // grows, and stale cells beyond any stride are zero by induction.
        const std::size_t usage_size =
            n_members * static_cast<std::size_t>(horizon);
        if (usage.size() < usage_size || !sc.usage_zeroed) {
            usage.assign(std::max(usage.size(), usage_size), 0);
            sc.usage_zeroed = true;
        }
        signature_tournament_pass(graph, upper, priority, members_of_op,
                                  usage, horizon, scale, budget, sc,
                                  result.start);
        result.length = schedule_length(graph, upper, result.start);
        return result;
    }

    usage.assign(n_members * static_cast<std::size_t>(horizon), 0);
    sc.usage_zeroed = false;

    if (engine == sched_engine::reference_scan) {
        reference_scan_pass(graph, upper, priority, members_of_op, usage,
                            horizon, scale, budget, result.start);
    } else {
        const auto try_place = [&](op_id o, int t) {
            const auto members = members_of_op.row(o.value());
            const std::int64_t share =
                scale / static_cast<std::int64_t>(members.size());
            const int lat = upper[o.value()];
            for (const std::size_t mi : members) {
                const std::size_t base =
                    mi * static_cast<std::size_t>(horizon);
                for (int u = t; u < t + lat; ++u) {
                    if (usage[base + static_cast<std::size_t>(u)] + share >
                        budget) {
                        return false;
                    }
                }
            }
            for (const std::size_t mi : members) {
                const std::size_t base =
                    mi * static_cast<std::size_t>(horizon);
                for (int u = t; u < t + lat; ++u) {
                    usage[base + static_cast<std::size_t>(u)] += share;
                }
            }
            return true;
        };
        event_schedule(graph, upper, priority, horizon, result.start, sc.ws,
                       try_place);
    }

    result.length = schedule_length(graph, upper, result.start);
    return result;
}

} // namespace mwl
