#include "core/pareto.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mwl {

std::vector<pareto_point> pareto_sweep(const sequencing_graph& graph,
                                       const hardware_model& model,
                                       const pareto_options& options)
{
    require(options.max_slack >= 0.0, "max_slack must be non-negative");
    require(options.patience >= 1, "patience must be >= 1");
    if (graph.empty()) {
        return {};
    }

    const int lambda_min = min_latency(graph, model);
    const int lambda_max = static_cast<int>(std::ceil(
        static_cast<double>(lambda_min) * (1.0 + options.max_slack)));

    std::vector<pareto_point> frontier;
    double best_area = std::numeric_limits<double>::infinity();
    int stale = 0;
    for (int lambda = lambda_min; lambda <= lambda_max; ++lambda) {
        dpalloc_result r = dpalloc(graph, model, lambda, options.allocator);
        if (r.path.total_area < best_area - 1e-9) {
            pareto_point point;
            point.lambda = lambda;
            point.latency = r.path.latency;
            point.area = r.path.total_area;
            point.path = std::move(r.path);
            // Dominance also covers achieved latency: a new point with the
            // same achieved latency but lower area replaces its
            // predecessor.
            while (!frontier.empty() &&
                   frontier.back().latency >= point.latency) {
                frontier.pop_back();
            }
            frontier.push_back(std::move(point));
            best_area = frontier.back().area;
            stale = 0;
        } else if (++stale >= options.patience) {
            break;
        }
    }
    MWL_ASSERT(!frontier.empty());
    return frontier;
}

} // namespace mwl
