// Seed plumbing for the randomized suites.
//
// Every property/fuzz test draws its RNG seed through `env_seed` and
// opens with MWL_TRACE_SEED, so (a) any assertion failure names the seed
// and the environment variable that replays it, and (b) exporting that
// variable reruns the exact failing stream:
//
//   MWL_CHAINS_SEED=0xC4A1 ./chains_property_test

#ifndef MWL_TESTS_TEST_SEED_HPP
#define MWL_TESTS_TEST_SEED_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mwl::testing {

/// The seed in `var` (decimal or 0x-hex), or `fallback` when unset.
/// Terminates with a diagnostic on an unparseable value -- a typo must
/// not silently fall back and "reproduce" a different run.
inline std::uint64_t env_seed(const char* var, std::uint64_t fallback)
{
    const char* text = std::getenv(var);
    if (text == nullptr || *text == '\0') {
        return fallback;
    }
    char* end = nullptr;
    const std::uint64_t seed = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: unparseable seed '%s'\n", var, text);
        std::abort();
    }
    return seed;
}

} // namespace mwl::testing

/// Attach the seed to every assertion inside the current scope.
#define MWL_TRACE_SEED(var, seed)                                           \
    SCOPED_TRACE(std::string("rng seed ") + std::to_string(seed) +          \
                 " (reproduce with " + (var) + "=" + std::to_string(seed) + \
                 ")")

#endif // MWL_TESTS_TEST_SEED_HPP
