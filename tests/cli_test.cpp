// Error-path tests for the CLI tools, run against the real binaries
// (MWL_TOOL_DIR is injected by CMake). Each case pins the exit code and a
// golden stderr snippet, so diagnostics stay diagnostics: a regression
// that turns a manifest typo into an uncaught abort, loses the 1-based
// line number, or shifts exit 2 -> 1 fails here, not in a user's shell.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace {

struct run_result {
    int exit_code = -1;
    std::string output; ///< stdout + stderr, interleaved
};

/// Run a tool with stderr folded into stdout and capture both.
run_result run(const std::string& command)
{
    run_result result;
    FILE* pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        ADD_FAILURE() << "popen failed for: " << command;
        return result;
    }
    std::array<char, 4096> buffer;
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
        result.output.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

std::string tool(const std::string& name)
{
    return std::string(MWL_TOOL_DIR) + "/" + name;
}

/// Write a manifest into the test's working directory (the build tree).
std::string write_manifest(const std::string& name, const std::string& text)
{
    std::ofstream out(name);
    out << text;
    return name;
}

void expect_fails_with(const std::string& command, int exit_code,
                       const std::string& snippet)
{
    const run_result r = run(command);
    EXPECT_EQ(r.exit_code, exit_code) << command << "\n" << r.output;
    EXPECT_NE(r.output.find(snippet), std::string::npos)
        << command << "\nexpected snippet: " << snippet << "\ngot:\n"
        << r.output;
}

// ------------------------------------------------------------ mwl_batch --

TEST(CliBatch, MalformedManifestLineReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_line.manifest",
        "# comment line\n"
        "corpus ops=4 count=1\n"
        "graph\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 3: expected 'graph FILE ...'");
}

TEST(CliBatch, UnknownKeywordReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_keyword.manifest", "corpus ops=4 count=1\nfrob x\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 2: unknown keyword 'frob'");
}

TEST(CliBatch, BadNumericDirectiveReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_bad_number.manifest", "corpus ops=4 count=1 lambda=abc\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 1: bad numeric value in 'lambda=abc'");
}

TEST(CliBatch, SweepAndVerifyAreMutuallyExclusive)
{
    const std::string manifest = write_manifest(
        "cli_test_conflict.manifest",
        "corpus ops=4 count=1 sweep=20 verify=4\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "sweep= and verify= are mutually exclusive");
}

TEST(CliBatch, MissingGraphFileReportsItsLineNumber)
{
    const std::string manifest = write_manifest(
        "cli_test_missing_graph.manifest",
        "graph cli_test_does_not_exist.mwl\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest line 1: cannot open graph file");
}

TEST(CliBatch, EmptyManifestIsAnError)
{
    const std::string manifest =
        write_manifest("cli_test_empty.manifest", "# nothing here\n");
    expect_fails_with(tool("mwl_batch") + " " + manifest, 2,
                      "manifest has no entries");
}

TEST(CliBatch, UnknownOptionExitsTwo)
{
    expect_fails_with(tool("mwl_batch") + " --frobnicate", 2,
                      "unknown option --frobnicate");
}

TEST(CliBatch, NegativeJobsIsDiagnosedNotWrapped)
{
    // stoul would silently wrap "-2" to ~1.8e19 threads.
    expect_fails_with(tool("mwl_batch") + " --jobs -2 -", 2,
                      "bad numeric value '-2' for --jobs");
}

// ----------------------------------------------------------- mwl_verify --

TEST(CliVerify, ZeroInputsIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --inputs 0", 2,
                      "--inputs must be >= 1");
}

TEST(CliVerify, ZeroCountIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --count 0", 2,
                      "--count must be >= 1");
}

TEST(CliVerify, OverwideCorpusIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --max-width 40", 2,
                      "--max-width must be <= 31");
}

TEST(CliVerify, NegativeSlackIsRejected)
{
    expect_fails_with(tool("mwl_verify") + " --slack -10", 2,
                      "slack must be non-negative");
}

TEST(CliVerify, MissingValueIsDiagnosed)
{
    expect_fails_with(tool("mwl_verify") + " --ops", 2,
                      "missing value for --ops");
}

TEST(CliVerify, UnknownOptionExitsTwo)
{
    expect_fails_with(tool("mwl_verify") + " --wibble", 2,
                      "unknown option --wibble");
}

// -------------------------------------------------------- mwl_scenarios --

TEST(CliScenarios, ModeIsRequired)
{
    expect_fails_with(tool("mwl_scenarios"), 2, "pick a mode");
}

TEST(CliScenarios, ModesAreMutuallyExclusive)
{
    expect_fails_with(tool("mwl_scenarios") + " --list --emit", 2,
                      "modes list and emit are mutually exclusive");
}

TEST(CliScenarios, UnknownScenarioIsAUsageErrorNamingTheValidOnes)
{
    const run_result r =
        run(tool("mwl_scenarios") + " --list --scenario no_such");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("unknown scenario 'no_such'"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("fir8"), std::string::npos) << r.output;
}

TEST(CliScenarios, OutOfRangeNumericValueIsDiagnosedNotAborted)
{
    // std::stod throws out_of_range here; that must surface as the usual
    // exit-2 diagnostic, not an uncaught abort.
    expect_fails_with(tool("mwl_scenarios") + " --list --slack 1e999", 2,
                      "bad value for --slack");
    expect_fails_with(tool("mwl_scenarios") + " --check x --tol 1e999", 2,
                      "bad value for --tol");
}

TEST(CliScenarios, CorruptedGoldenIsMalformedInputNotDrift)
{
    // Exit-code contract: 1 means the allocation quality really moved;
    // a golden that cannot be parsed is malformed input -> exit 2.
    std::filesystem::create_directories("cli_test_corrupt_goldens");
    std::ofstream("cli_test_corrupt_goldens/fir4.json") << "{\"trunc";
    const run_result r = run(tool("mwl_scenarios") +
                             " --check cli_test_corrupt_goldens"
                             " --scenario fir4");
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("fir4.json"), std::string::npos) << r.output;
}

TEST(CliScenarios, CheckAgainstMissingGoldensFails)
{
    const run_result r = run(tool("mwl_scenarios") +
                             " --check cli_test_no_such_dir"
                             " --scenario fir4");
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_NE(r.output.find("missing"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("FAIL"), std::string::npos) << r.output;
}

TEST(CliScenarios, ListSucceedsAndNamesEveryScenario)
{
    const run_result r = run(tool("mwl_scenarios") + " --list");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    for (const char* name : {"fir8", "dct8", "adder_chain16"}) {
        EXPECT_NE(r.output.find(name), std::string::npos) << r.output;
    }
}

} // namespace
