// Concurrent batch allocation service.
//
// Turns the one-shot `dpalloc` call into a service: allocation jobs --
// (graph, model, lambda, options) tuples -- are submitted from any thread,
// deduplicated by a content fingerprint of their inputs, fanned out across
// a work-stealing thread pool, and collected in submission order. Two
// mechanisms make repeated work free:
//
//  * In-flight coalescing: a job identical to one currently executing
//    attaches to it and shares its result instead of running again.
//  * A bounded LRU result cache keyed on the job fingerprint, surviving
//    across batches for the lifetime of the engine, so a service replaying
//    popular designs (or a sweep revisiting a lambda) answers from memory.
//
// The cache is lock-striped (support/sharded_lru.hpp): lookups take only
// the shard lock their key hashes to, never the engine mutex, so N serve
// connections hitting the cache do not serialise on one lock. Counters
// are atomics, published as an `engine_stats` snapshot that is queryable
// while jobs run -- the serve daemon's stats endpoint reads it live.
//
// Two consumption styles share the dedup/coalesce/cache machinery:
//
//  * Batch: submit() many jobs, drain() them in submission order
//    (mwl_batch, the campaign runner).
//  * Direct: run() one job to completion on the calling thread
//    (mwl_serve's per-request path). run() never touches the batch
//    entry list, so concurrent callers do not contend on drain()'s
//    global barrier; it coalesces with in-flight work from either style.
//
// Identity is structural: the graph fingerprint covers shapes and edges
// (io/graph_io.hpp), the model contributes hardware_model::fingerprint(),
// and options compare field-wise. Equal keys therefore imply inputs the
// allocator cannot distinguish, which (dpalloc being deterministic and
// pure) implies byte-identical results -- the invariant that makes serving
// a cached datapath indistinguishable from recomputing it. Asserted
// against direct serial dpalloc calls in tests/engine_test.cpp.

#ifndef MWL_ENGINE_BATCH_ENGINE_HPP
#define MWL_ENGINE_BATCH_ENGINE_HPP

#include "core/dpalloc.hpp"
#include "io/graph_io.hpp"
#include "support/sharded_lru.hpp"
#include "support/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mwl {

struct batch_options {
    /// Worker threads for an engine-owned pool; 0 = hardware concurrency.
    std::size_t jobs = 0;
    /// Bound on the LRU result cache (completed jobs retained).
    std::size_t cache_capacity = 1024;
    /// Lock stripes the cache is split across (rounded up to a power of
    /// two). More stripes = less same-shard contention under concurrent
    /// serve traffic; 16 keeps per-shard capacity sane at the default
    /// cache size.
    std::size_t cache_shards = 16;
    /// Debug mode: run the static analyzer (analyze_allocation) over every
    /// freshly executed allocation; findings turn the job into an error
    /// carrying the rendered report. Costs one elaboration per execution
    /// (cache hits and coalesced jobs are not re-checked).
    bool debug_static_check = false;
};

/// Cumulative engine statistics up to `stats()` (kept for the batch
/// tools' end-of-run report; a subset of `engine_stats`).
struct batch_stats {
    std::size_t submitted = 0; ///< jobs accepted by submit() or run()
    std::size_t executed = 0;  ///< dpalloc runs actually performed
    std::size_t cache_hits = 0; ///< served from the LRU at submit time
    std::size_t coalesced = 0;  ///< attached to an identical in-flight job
    std::size_t errors = 0;     ///< executions that threw (e.g. infeasible)
};

/// Structured point-in-time snapshot, safe to read from any thread while
/// jobs run (counters are atomics; no engine lock is taken). The serve
/// daemon's stats endpoint reports this verbatim.
struct engine_stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0; ///< submitted - cache_hits
    std::uint64_t coalesced = 0;
    std::uint64_t errors = 0;
    std::uint64_t evictions = 0;   ///< results aged out of the LRU
    std::size_t in_flight = 0;     ///< distinct jobs executing right now
    std::size_t cache_size = 0;
    std::size_t cache_capacity = 0;
};

class batch_engine {
public:
    /// Per-job outcome, in submission order. Coalesced and cached jobs
    /// share one immutable result object with the job that computed it.
    struct outcome {
        std::shared_ptr<const dpalloc_result> result; ///< null on error
        std::string error;     ///< what() of the failure, empty on success
        std::uint64_t key = 0; ///< job fingerprint (reported by mwl_batch)
        bool from_cache = false;
        bool coalesced = false;

        [[nodiscard]] bool ok() const { return result != nullptr; }
    };

    /// Engine with its own pool.
    explicit batch_engine(const batch_options& options = {});

    /// Engine sharing an external pool (e.g. with a parallel Pareto sweep);
    /// `pool` must outlive the engine.
    batch_engine(thread_pool& pool, const batch_options& options = {});

    /// Completes all in-flight work (an implicit drain) before returning.
    /// No run() call may still be executing.
    ~batch_engine();

    batch_engine(const batch_engine&) = delete;
    batch_engine& operator=(const batch_engine&) = delete;

    /// Enqueue one allocation job; returns its index into the vector the
    /// next drain() returns. `graph` and `model` are borrowed and must stay
    /// alive until that drain() completes. Thread-safe.
    std::size_t submit(const sequencing_graph& graph,
                       const hardware_model& model, int lambda,
                       const dpalloc_options& options = {});

    /// Run one job to completion on the calling thread: answer from the
    /// cache, coalesce onto an identical in-flight job (helping the pool
    /// while waiting, so run() may be called from a pool task), or execute
    /// dpalloc inline. Never touches the batch entry list -- concurrent
    /// run() calls from N serve connections share only the striped cache
    /// and the (brief) in-flight registration, not drain()'s barrier.
    /// The completion hook does not fire for run() jobs (it is an index
    /// contract over submit()). Thread-safe; `graph`/`model` only need to
    /// live for the duration of the call.
    [[nodiscard]] outcome run(const sequencing_graph& graph,
                              const hardware_model& model, int lambda,
                              const dpalloc_options& options = {});

    /// Wait for every submitted job (helping the pool while blocked, so
    /// drain() may be called from inside a pool task) and return the
    /// outcomes in submission order, starting the next batch. The result
    /// cache persists across batches.
    [[nodiscard]] std::vector<outcome> drain();

    /// Jobs submitted but not yet resolved in the current batch.
    [[nodiscard]] std::size_t pending() const;

    /// Per-job checkpoint hook: invoked exactly once per submitted index
    /// the moment its outcome is known (cache hit at submit, execution,
    /// or coalesced resolution), with the engine lock *not* held, from
    /// whichever thread resolved the job. Every hook call for a batch
    /// completes before that batch's drain() returns, so a caller may
    /// reuse its index-keyed state across batches. The campaign runner
    /// journals completed points from here (src/campaign/). The hook must
    /// not call back into the engine; it must be set while no jobs are in
    /// flight.
    using completion_hook =
        std::function<void(std::size_t index, const outcome&)>;
    void set_completion_hook(completion_hook hook);

    [[nodiscard]] batch_stats stats() const;

    /// Lock-free structured snapshot, valid mid-flight (cache_size and
    /// evictions briefly lock each cache shard in turn).
    [[nodiscard]] engine_stats snapshot() const;

    [[nodiscard]] thread_pool& pool() { return *pool_; }

private:
    struct job_key {
        std::uint64_t graph_fp = 0;
        std::uint64_t model_fp = 0;
        int lambda = 0;
        dpalloc_options options;

        friend bool operator==(const job_key&, const job_key&) = default;
    };
    struct job_key_hash {
        std::size_t operator()(const job_key& key) const;
    };

    /// Rendezvous for run() callers coalescing onto an in-flight job.
    struct sync_slot {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const dpalloc_result> result;
        std::string error;
    };

    /// One executing job and everyone waiting on it.
    struct inflight_entry {
        std::vector<std::size_t> indices;  ///< batch waiters (entry index)
        std::shared_ptr<sync_slot> sync;   ///< run() waiters, lazily made
    };

    void execute(const job_key& key, const sequencing_graph& graph,
                 const hardware_model& model);
    /// dpalloc + (optionally) the static analyzer; fills exactly one of
    /// `result` / `error`.
    void allocate(const sequencing_graph& graph, const hardware_model& model,
                  int lambda, const dpalloc_options& options,
                  std::shared_ptr<const dpalloc_result>& result,
                  std::string& error) const;
    void resolve(const job_key& key,
                 std::shared_ptr<const dpalloc_result> result,
                 std::string error);
    outcome wait_coalesced(const std::shared_ptr<sync_slot>& slot,
                           std::uint64_t key_hash);

    std::unique_ptr<thread_pool> owned_pool_; ///< null when pool is shared
    thread_pool* pool_;
    bool debug_static_check_ = false;

    mutable std::mutex mutex_;
    std::condition_variable idle_cv_;
    std::vector<outcome> entries_;
    std::unordered_map<job_key, inflight_entry, job_key_hash> inflight_;
    sharded_lru<job_key, std::shared_ptr<const dpalloc_result>, job_key_hash>
        cache_;
    completion_hook hook_; ///< set while idle, read under mutex_

    // Queryable-while-running counters (engine_stats); relaxed ordering is
    // enough, the snapshot is advisory.
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::size_t> in_flight_{0};
};

} // namespace mwl

#endif // MWL_ENGINE_BATCH_ENGINE_HPP
