#include "baseline/two_stage.hpp"

#include "baseline/grouping.hpp"
#include "dfg/analysis.hpp"
#include "sched/force_directed.hpp"
#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

struct bind_search {
    const sequencing_graph* graph = nullptr;
    const hardware_model* model = nullptr;
    std::span<const int> start;
    std::span<const int> native;
    std::vector<op_id> order; ///< processing order (descending area)
    std::vector<std::vector<op_id>> groups;
    double cost = 0.0;
    std::vector<std::vector<op_id>> best_groups;
    double best_cost = 0.0;
    std::size_t nodes = 0;
    std::size_t node_cap = 0;
    bool capped = false;

    [[nodiscard]] double group_area(const std::vector<op_id>& group) const
    {
        op_shape join = graph->shape(group.front());
        for (const op_id o : group) {
            join = op_shape::join(join, graph->shape(o));
        }
        return model->area(join);
    }

    void recurse(std::size_t depth)
    {
        if (capped) {
            return;
        }
        if (++nodes > node_cap) {
            capped = true;
            return;
        }
        if (cost >= best_cost) {
            return; // cannot improve (group areas only grow)
        }
        if (depth == order.size()) {
            best_cost = cost;
            best_groups = groups;
            return;
        }
        const op_id o = order[depth];

        // Try joining each existing group. Index-based iteration: deeper
        // recursion levels push/pop groups, which can reallocate the
        // vector; the first n_groups entries themselves are stable.
        const std::size_t n_groups = groups.size();
        for (std::size_t gi = 0; gi < n_groups; ++gi) {
            groups[gi].push_back(o);
            if (latency_preserving_shape(*graph, *model, groups[gi], start,
                                         native)) {
                const double before = group_area_without_last(groups[gi]);
                const double after = group_area(groups[gi]);
                cost += after - before;
                recurse(depth + 1);
                cost -= after - before;
            }
            groups[gi].pop_back();
            if (capped) {
                return;
            }
        }

        // Open a new group.
        groups.push_back({o});
        const double own = group_area(groups.back());
        cost += own;
        recurse(depth + 1);
        cost -= own;
        groups.pop_back();
    }

    [[nodiscard]] double group_area_without_last(
        const std::vector<op_id>& group) const
    {
        MWL_ASSERT(group.size() >= 2);
        op_shape join = graph->shape(group.front());
        for (std::size_t i = 0; i + 1 < group.size(); ++i) {
            join = op_shape::join(join, graph->shape(group[i]));
        }
        return model->area(join);
    }
};

/// Greedy first-fit incumbent: descending area, first compatible group.
std::vector<std::vector<op_id>> greedy_groups(
    const sequencing_graph& graph, const hardware_model& model,
    const std::vector<op_id>& order, std::span<const int> start,
    std::span<const int> native)
{
    std::vector<std::vector<op_id>> groups;
    for (const op_id o : order) {
        bool placed = false;
        for (std::vector<op_id>& group : groups) {
            group.push_back(o);
            if (latency_preserving_shape(graph, model, group, start,
                                         native)) {
                placed = true;
                break;
            }
            group.pop_back();
        }
        if (!placed) {
            groups.push_back({o});
        }
    }
    return groups;
}

double groups_cost(const sequencing_graph& graph, const hardware_model& model,
                   const std::vector<std::vector<op_id>>& groups)
{
    double total = 0.0;
    for (const auto& group : groups) {
        op_shape join = graph.shape(group.front());
        for (const op_id o : group) {
            join = op_shape::join(join, graph.shape(o));
        }
        total += model.area(join);
    }
    return total;
}

} // namespace

two_stage_result two_stage_allocate(const sequencing_graph& graph,
                                    const hardware_model& model, int lambda,
                                    const two_stage_options& options)
{
    two_stage_result result;
    if (graph.empty()) {
        return result;
    }

    const std::vector<int> native = native_latencies(graph, model);
    const std::vector<int> start =
        force_directed_schedule(graph, native, lambda); // checks feasibility

    // Stage 2: optimal latency-preserving partition. Processing order:
    // descending own-area (big operations first anchor the groups), id
    // tie-break for determinism.
    std::vector<op_id> order = graph.all_ops();
    std::sort(order.begin(), order.end(), [&](op_id a, op_id b) {
        const double aa = model.area(graph.shape(a));
        const double ab = model.area(graph.shape(b));
        if (aa != ab) {
            return aa > ab;
        }
        return a < b;
    });

    bind_search search;
    search.graph = &graph;
    search.model = &model;
    search.start = start;
    search.native = native;
    search.order = order;
    search.node_cap = options.node_cap;
    search.best_groups = greedy_groups(graph, model, order, start, native);
    search.best_cost = groups_cost(graph, model, search.best_groups) + 1e-9;
    search.recurse(0);

    result.proven_optimal_binding = !search.capped;
    result.nodes = search.nodes;
    result.path = make_grouped_datapath(graph, model, search.best_groups,
                                        start);
    return result;
}

} // namespace mwl
