#include "support/stats.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mwl {

double mean(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double x : sample) {
        sum += x;
    }
    return sum / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample)
{
    if (sample.size() < 2) {
        return 0.0;
    }
    const double mu = mean(sample);
    double accum = 0.0;
    for (const double x : sample) {
        accum += (x - mu) * (x - mu);
    }
    return std::sqrt(accum / static_cast<double>(sample.size() - 1));
}

double geomean(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (const double x : sample) {
        MWL_ASSERT(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(sample.size()));
}

double percentile(std::span<const double> sample, double p)
{
    if (sample.empty()) {
        return 0.0;
    }
    MWL_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(sample.begin(), sample.end());
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min_of(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    return *std::min_element(sample.begin(), sample.end());
}

double max_of(std::span<const double> sample)
{
    if (sample.empty()) {
        return 0.0;
    }
    return *std::max_element(sample.begin(), sample.end());
}

} // namespace mwl
