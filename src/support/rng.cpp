#include "support/rng.hpp"

#include "support/error.hpp"

namespace mwl {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

rng::rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
}

rng::result_type rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t rng::uniform(std::uint64_t lo, std::uint64_t hi)
{
    MWL_ASSERT(lo <= hi);
    const std::uint64_t span = hi - lo;
    if (span == max()) {
        return (*this)();
    }
    // Lemire-style rejection sampling: unbiased and fast.
    const std::uint64_t bound = span + 1;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t draw = (*this)();
        if (draw >= threshold) {
            return lo + draw % bound;
        }
    }
}

int rng::uniform_int(int lo, int hi)
{
    MWL_ASSERT(0 <= lo && lo <= hi);
    return static_cast<int>(uniform(static_cast<std::uint64_t>(lo),
                                    static_cast<std::uint64_t>(hi)));
}

double rng::uniform_real()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool rng::chance(double p)
{
    return uniform_real() < p;
}

rng rng::fork(std::uint64_t salt)
{
    return rng((*this)() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

} // namespace mwl
