// Batch-engine throughput: a Pareto sweep over a tgff corpus, run through
// the parallel engine at --jobs 1 vs --jobs 8, plus a result-cache replay
// pass. Every parallel frontier is cross-checked byte-identical to the
// serial `pareto_sweep` -- the bench exits non-zero on any divergence, so
// the speedup numbers can never come from changed answers.
//
// Emits the aligned table (or --csv) plus a JSON artifact: always written
// to BENCH_batch_throughput.json (or --out FILE) and echoed to stdout.
// Note the speedup is bounded by the machine: the artifact records
// hardware_concurrency so a single-core container's ~1x is legible.

#include "bench_common.hpp"
#include "core/pareto.hpp"
#include "engine/batch_engine.hpp"
#include "engine/parallel_pareto.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

bool fronts_identical(const std::vector<mwl::pareto_point>& a,
                      const std::vector<mwl::pareto_point>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].lambda != b[i].lambda || a[i].latency != b[i].latency ||
            a[i].area != b[i].area ||
            a[i].path.start != b[i].path.start ||
            a[i].path.instance_of_op != b[i].path.instance_of_op ||
            a[i].path.total_area != b[i].path.total_area) {
            return false;
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "batch_throughput");
    if (opt.graphs == 25) {
        opt.graphs = 64; // the acceptance corpus size
    }
    const std::size_t n_ops = opt.max_size != 0 ? opt.max_size : 12;

    pareto_options sweep;
    sweep.max_slack = 0.3; // the paper's 0..30% relaxation band

    const sonic_model model;
    const auto corpus = make_corpus(n_ops, opt.graphs, model, opt.seed);

    // Serial reference: ground truth for identity and the speedup base.
    std::vector<std::vector<pareto_point>> serial_fronts(corpus.size());
    stopwatch clock;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        serial_fronts[i] = pareto_sweep(corpus[i].graph, model, sweep);
    }
    const double serial_ms = clock.milliseconds();

    constexpr int reps = 3;
    const auto run_arm = [&](std::size_t jobs, bool& identical) {
        identical = true;
        double best_ms = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
            std::vector<std::vector<pareto_point>> fronts(corpus.size());
            thread_pool pool(jobs);
            stopwatch arm_clock;
            task_group group(pool);
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                const sequencing_graph* graph = &corpus[i].graph;
                std::vector<pareto_point>* slot = &fronts[i];
                group.run([&pool, &model, &sweep, graph, slot] {
                    *slot = parallel_pareto_sweep(*graph, model, sweep, pool);
                });
            }
            group.wait();
            const double ms = arm_clock.milliseconds();
            if (rep == 0 || ms < best_ms) {
                best_ms = ms;
            }
            for (std::size_t i = 0; i < corpus.size(); ++i) {
                if (!fronts_identical(fronts[i], serial_fronts[i])) {
                    identical = false;
                }
            }
        }
        return best_ms;
    };

    bool ok1 = true;
    bool ok8 = true;
    const double ms_jobs1 = run_arm(1, ok1);
    const double ms_jobs8 = run_arm(8, ok8);
    if (!ok1 || !ok8) {
        std::cerr << "batch_throughput: PARALLEL FRONT DIVERGED FROM"
                     " SERIAL pareto_sweep\n";
        return 1;
    }

    // Cache replay: the same corpus's lambda_min jobs twice through one
    // engine; the second pass must be all cache hits.
    batch_options engine_options;
    engine_options.jobs = 8;
    engine_options.cache_capacity = 2 * corpus.size() + 1;
    batch_engine engine(engine_options);
    stopwatch pass1;
    for (const corpus_entry& e : corpus) {
        engine.submit(e.graph, model, e.lambda_min);
    }
    static_cast<void>(engine.drain());
    const double pass1_ms = pass1.milliseconds();
    stopwatch pass2;
    for (const corpus_entry& e : corpus) {
        engine.submit(e.graph, model, e.lambda_min);
    }
    static_cast<void>(engine.drain());
    const double pass2_ms = pass2.milliseconds();
    const batch_stats stats = engine.stats();
    const double hit_rate =
        static_cast<double>(stats.cache_hits) /
        static_cast<double>(corpus.size());

    const double speedup = ms_jobs8 > 0.0 ? ms_jobs1 / ms_jobs8 : 0.0;

    table t("Batch sweep throughput: " + std::to_string(opt.graphs) +
            " graphs, |O| = " + std::to_string(n_ops) +
            ", slack 0..30%");
    t.header({"arm", "ms", "graphs/s", "speedup"});
    const auto rate = [&](double ms) {
        return ms > 0.0 ? static_cast<double>(opt.graphs) / (ms / 1e3) : 0.0;
    };
    t.row({"serial pareto_sweep", table::num(serial_ms, 1),
           table::num(rate(serial_ms), 1), "1.00x"});
    t.row({"engine --jobs 1", table::num(ms_jobs1, 1),
           table::num(rate(ms_jobs1), 1),
           table::num(serial_ms / ms_jobs1, 2) + "x"});
    t.row({"engine --jobs 8", table::num(ms_jobs8, 1),
           table::num(rate(ms_jobs8), 1),
           table::num(serial_ms / ms_jobs8, 2) + "x"});
    t.row({"cache replay", table::num(pass2_ms, 1),
           table::num(rate(pass2_ms), 1),
           table::num(pass1_ms / (pass2_ms > 0.0 ? pass2_ms : 1e-9), 2) +
               "x"});
    bench::emit(t, opt);

    std::ostringstream json;
    json << "{\"bench\":\"batch_throughput\",\"graphs\":" << opt.graphs
         << ",\"n_ops\":" << n_ops << ",\"seed\":" << opt.seed
         << ",\"sweep_slack\":" << sweep.max_slack
         << ',' << bench::env_json()
         << ",\"serial_ms\":" << serial_ms << ",\"jobs1_ms\":" << ms_jobs1
         << ",\"jobs8_ms\":" << ms_jobs8
         << ",\"speedup_jobs8_vs_jobs1\":" << speedup
         << ",\"front_identical_to_serial\":" << (ok1 && ok8 ? "true"
                                                             : "false")
         << ",\"cache\":{\"first_pass_ms\":" << pass1_ms
         << ",\"second_pass_ms\":" << pass2_ms
         << ",\"hit_rate\":" << hit_rate << "}}";
    std::cout << '\n' << json.str() << '\n';

    // Smoke runs must not clobber a recorded full-size artifact unless an
    // explicit --out asks for a file.
    if (opt.max_size != 0 && opt.out.empty()) {
        return 0;
    }
    const std::string path =
        opt.out.empty() ? "BENCH_batch_throughput.json" : opt.out;
    std::ofstream file(path);
    if (file) {
        file << json.str() << '\n';
    } else {
        std::cerr << "batch_throughput: cannot write " << path << '\n';
        return 1;
    }
    return 0;
}
