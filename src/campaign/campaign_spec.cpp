#include "campaign/campaign_spec.hpp"

#include "scenarios/scenarios.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

namespace mwl {

namespace {

[[noreturn]] void fail_line(std::size_t line_no, const std::string& message)
{
    throw spec_error("spec line " + std::to_string(line_no) + ": " +
                     message);
}

int parse_int(const std::string& text, std::size_t line_no,
              const std::string& what)
{
    try {
        std::size_t used = 0;
        const int value = std::stoi(text, &used);
        if (used != text.size()) {
            throw std::invalid_argument(text);
        }
        return value;
    } catch (const std::exception&) {
        fail_line(line_no, "bad " + what + " value '" + text + "'");
    }
}

std::uint64_t parse_u64(const std::string& text, std::size_t line_no,
                        const std::string& what)
{
    try {
        std::size_t used = 0;
        if (!text.empty() && text[0] == '-') {
            throw std::invalid_argument(text);
        }
        const std::uint64_t value = std::stoull(text, &used);
        if (used != text.size()) {
            throw std::invalid_argument(text);
        }
        return value;
    } catch (const std::exception&) {
        fail_line(line_no, "bad " + what + " value '" + text + "'");
    }
}

/// `1,2,4` -> {1, 2, 4}; each element a positive int.
std::vector<int> parse_int_list(const std::string& text, std::size_t line_no,
                                const std::string& what)
{
    std::vector<int> values;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = std::min(text.find(',', pos), text.size());
        const int value =
            parse_int(text.substr(pos, comma - pos), line_no, what);
        if (value < 1) {
            fail_line(line_no, what + " values must be >= 1");
        }
        if (std::find(values.begin(), values.end(), value) != values.end()) {
            fail_line(line_no, "duplicate " + what + " value " +
                                   std::to_string(value));
        }
        values.push_back(value);
        pos = comma + 1;
    }
    return values;
}

/// Split `lo..hi` around the dots; both halves are ints.
void parse_range(const std::string& text, std::size_t line_no, int& lo,
                 int& hi)
{
    const std::size_t dots = text.find("..");
    if (dots == std::string::npos) {
        // A single value is the degenerate range lo..lo.
        lo = hi = parse_int(text, line_no, "slack");
        return;
    }
    lo = parse_int(text.substr(0, dots), line_no, "slack");
    hi = parse_int(text.substr(dots + 2), line_no, "slack");
}

/// `1e-6,1e-5` -> {1e-6, 1e-5}; each element a positive double, no
/// duplicates (the budget list of a tune line).
std::vector<double> parse_double_list(const std::string& text,
                                      std::size_t line_no,
                                      const std::string& what)
{
    std::vector<double> values;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = std::min(text.find(',', pos), text.size());
        const std::string token = text.substr(pos, comma - pos);
        double value = 0.0;
        try {
            std::size_t used = 0;
            value = std::stod(token, &used);
            if (used != token.size() || !std::isfinite(value)) {
                throw std::invalid_argument(token);
            }
        } catch (const std::exception&) {
            fail_line(line_no, "bad " + what + " value '" + token + "'");
        }
        if (value <= 0.0) {
            fail_line(line_no, what + " values must be positive");
        }
        if (std::find(values.begin(), values.end(), value) != values.end()) {
            fail_line(line_no, "duplicate " + what + " value '" + token +
                                   "'");
        }
        values.push_back(value);
        pos = comma + 1;
    }
    return values;
}

/// key=value splitter for the lambda/model/perturb keyword lines.
bool split_kv(const std::string& token, std::string& key, std::string& value)
{
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        return false;
    }
    key = token.substr(0, eq);
    value = token.substr(eq + 1);
    return true;
}

} // namespace

campaign_spec campaign_spec::parse(std::istream& in)
{
    campaign_spec spec;
    std::unordered_set<std::string> seen_scenarios;
    bool saw_lambda = false;
    bool saw_model = false;
    bool saw_perturb = false;
    bool saw_tune = false;

    const std::vector<std::string> known = scenario_names();
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::istringstream line(raw);
        std::string keyword;
        if (!(line >> keyword) || keyword.front() == '#') {
            continue;
        }
        if (keyword == "scenario") {
            std::string name;
            bool any = false;
            while (line >> name) {
                any = true;
                if (name == "all") {
                    for (const std::string& each : known) {
                        if (seen_scenarios.insert(each).second) {
                            spec.scenarios.push_back(each);
                        }
                    }
                    continue;
                }
                if (std::find(known.begin(), known.end(), name) ==
                    known.end()) {
                    fail_line(line_no, "unknown scenario '" + name + "'");
                }
                if (!seen_scenarios.insert(name).second) {
                    fail_line(line_no, "duplicate scenario '" + name + "'");
                }
                spec.scenarios.push_back(name);
            }
            if (!any) {
                fail_line(line_no, "expected 'scenario NAME ...'");
            }
        } else if (keyword == "lambda") {
            if (saw_lambda) {
                fail_line(line_no, "duplicate lambda line");
            }
            saw_lambda = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no, "expected key=value, got '" + token +
                                           "'");
                }
                if (key == "slack") {
                    parse_range(value, line_no, spec.slack_lo,
                                spec.slack_hi);
                } else if (key == "step") {
                    spec.slack_step = parse_int(value, line_no, "step");
                } else {
                    fail_line(line_no, "unknown lambda key '" + key + "'");
                }
            }
            if (spec.slack_lo < 0 || spec.slack_hi < spec.slack_lo) {
                fail_line(line_no, "slack range must be 0 <= lo <= hi");
            }
            if (spec.slack_step < 1) {
                fail_line(line_no, "step must be >= 1");
            }
        } else if (keyword == "model") {
            if (saw_model) {
                fail_line(line_no, "duplicate model line");
            }
            saw_model = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no, "expected key=value, got '" + token +
                                           "'");
                }
                if (key == "adder-latency") {
                    spec.adder_latencies =
                        parse_int_list(value, line_no, "adder-latency");
                } else if (key == "mul-bits-per-cycle") {
                    spec.mul_bits_per_cycle =
                        parse_int_list(value, line_no, "mul-bits-per-cycle");
                } else {
                    fail_line(line_no, "unknown model key '" + key + "'");
                }
            }
        } else if (keyword == "perturb") {
            if (saw_perturb) {
                fail_line(line_no, "duplicate perturb line");
            }
            saw_perturb = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no, "expected key=value, got '" + token +
                                           "'");
                }
                if (key == "count") {
                    spec.perturb_count = parse_u64(value, line_no, "count");
                } else if (key == "flips") {
                    spec.perturb_flips = parse_int(value, line_no, "flips");
                    if (spec.perturb_flips < 1) {
                        fail_line(line_no, "flips must be >= 1");
                    }
                } else if (key == "seed") {
                    spec.perturb_seed = parse_u64(value, line_no, "seed");
                } else {
                    fail_line(line_no, "unknown perturb key '" + key + "'");
                }
            }
            if (spec.perturb_count < 1) {
                fail_line(line_no, "perturb needs count=N (>= 1)");
            }
        } else if (keyword == "tune") {
            if (saw_tune) {
                fail_line(line_no, "duplicate tune line");
            }
            saw_tune = true;
            std::string token;
            std::string key;
            std::string value;
            while (line >> token) {
                if (!split_kv(token, key, value)) {
                    fail_line(line_no, "expected key=value, got '" + token +
                                           "'");
                }
                if (key == "budget") {
                    spec.tune_budgets =
                        parse_double_list(value, line_no, "budget");
                } else if (key == "min-frac") {
                    spec.tune_min_frac = parse_int(value, line_no,
                                                   "min-frac");
                } else if (key == "max-frac") {
                    spec.tune_max_frac = parse_int(value, line_no,
                                                   "max-frac");
                } else if (key == "seed") {
                    spec.tune_seed = parse_u64(value, line_no, "seed");
                } else if (key == "max-steps") {
                    spec.tune_max_steps =
                        parse_u64(value, line_no, "max-steps");
                } else if (key == "anneal") {
                    spec.tune_anneal = parse_u64(value, line_no, "anneal");
                } else {
                    fail_line(line_no, "unknown tune key '" + key + "'");
                }
            }
            if (spec.tune_budgets.empty()) {
                fail_line(line_no, "tune needs budget=LIST");
            }
            if (spec.tune_min_frac < 0 ||
                spec.tune_max_frac < spec.tune_min_frac) {
                fail_line(line_no,
                          "tune frac range must be 0 <= min <= max");
            }
        } else {
            fail_line(line_no, "unknown keyword '" + keyword + "'");
        }
    }
    if (spec.scenarios.empty()) {
        throw spec_error("spec names no scenarios");
    }
    return spec;
}

campaign_spec campaign_spec::parse(const std::string& text)
{
    std::istringstream in(text);
    return parse(in);
}

std::string campaign_point::key() const
{
    std::string base = scenario + "/v" + std::to_string(variant) + "/a" +
                       std::to_string(adder_latency) + "m" +
                       std::to_string(mul_bits_per_cycle) + "/s" +
                       std::to_string(slack_percent);
    if (tuned) {
        // %g keeps 1e-06 stable and short; untuned campaigns keep the
        // historic key (and fingerprint) byte for byte.
        std::ostringstream b;
        b << budget;
        base += "/b" + b.str();
    }
    return base;
}

std::vector<campaign_point> expand(const campaign_spec& spec)
{
    std::vector<campaign_point> points;
    for (const std::string& scenario : spec.scenarios) {
        for (std::size_t v = 0; v <= spec.perturb_count; ++v) {
            for (const int adder : spec.adder_latencies) {
                for (const int bits : spec.mul_bits_per_cycle) {
                    for (int slack = spec.slack_lo; slack <= spec.slack_hi;
                         slack += spec.slack_step) {
                        campaign_point p;
                        p.index = points.size();
                        p.scenario = scenario;
                        p.variant = v;
                        p.adder_latency = adder;
                        p.mul_bits_per_cycle = bits;
                        p.slack_percent = slack;
                        if (spec.tune_budgets.empty()) {
                            points.push_back(std::move(p));
                            continue;
                        }
                        // Tuning campaigns add the budget as the
                        // innermost loop.
                        for (const double budget : spec.tune_budgets) {
                            campaign_point t = p;
                            t.index = points.size();
                            t.tuned = true;
                            t.budget = budget;
                            points.push_back(std::move(t));
                        }
                    }
                }
            }
        }
    }
    return points;
}

std::uint64_t points_fingerprint(const std::vector<campaign_point>& points)
{
    fnv1a_hasher h;
    h.mix(std::string_view("mwl-campaign-points-v1"));
    h.mix(static_cast<std::int64_t>(points.size()));
    for (const campaign_point& p : points) {
        h.mix(std::string_view(p.key()));
    }
    return h.digest();
}

sequencing_graph make_variant_graph(const campaign_spec& spec,
                                    const std::string& scenario,
                                    std::size_t variant)
{
    sequencing_graph base = make_scenario(scenario).graph;
    if (variant == 0) {
        return base;
    }
    fnv1a_hasher h;
    h.mix(static_cast<std::int64_t>(spec.perturb_seed));
    h.mix(std::string_view(scenario));
    h.mix(static_cast<std::int64_t>(variant));
    rng r(h.digest());

    // Collect the perturbed shapes first, then rebuild: the graph itself
    // is append-only, so a variant is a fresh graph with identical edges.
    std::vector<op_shape> shapes;
    shapes.reserve(base.size());
    for (const op_id id : base.all_ops()) {
        shapes.push_back(base.shape(id));
    }
    for (int flip = 0; flip < spec.perturb_flips && !shapes.empty();
         ++flip) {
        const std::size_t pick =
            r.uniform(0, static_cast<std::uint64_t>(shapes.size()) - 1);
        op_shape& s = shapes[pick];
        const int delta = r.chance(0.5) ? 1 : -1;
        if (s.kind() == op_kind::add) {
            // Keep widths in the range every model and the RTL layer
            // accept: at least 1 bit, and capped well below 64.
            const int w = std::clamp(s.width_a() + delta, 1, 48);
            s = op_shape::adder(w);
        } else {
            const bool first = r.chance(0.5);
            int a = s.width_a();
            int b = s.width_b();
            (first ? a : b) = std::clamp((first ? a : b) + delta, 1, 32);
            s = op_shape::multiplier(a, b);
        }
    }

    sequencing_graph out;
    for (const op_id id : base.all_ops()) {
        out.add_operation(shapes[id.value()], base.op(id).name);
    }
    for (const op_id id : base.all_ops()) {
        for (const op_id succ : base.successors(id)) {
            out.add_dependency(id, succ);
        }
    }
    return out;
}

} // namespace mwl
