// Differential value checks over the named scenario corpus: quality
// goldens prove the allocations did not get *worse*; this suite proves
// they stayed *correct* -- for every scenario and every allocator,
// reference_evaluate == simulate_datapath == RTL interpretation on random
// signed inputs (the same harness mwl_verify runs on random tgff graphs,
// pointed at the real DSP workloads). Labeled `scenarios` + `slow`.

#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"
#include "tgff/corpus.hpp"
#include "verify/differential.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

TEST(ScenarioVerify, EveryAllocatorIsValueCorrectOnEveryScenario)
{
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 6;
    options.ilp_max_ops = 8; // ILP joins on the small kernels
    const std::vector<scenario> scenarios = all_scenarios();
    verify_report report;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const scenario& s = scenarios[i];
        const int lambda =
            relaxed_lambda(min_latency(s.graph, model), options.slack);
        report.merge(verify_graph(s.graph, s.name, model, lambda, options,
                                  verify_input_seed(options.seed, i)));
    }
    EXPECT_EQ(report.graphs, scenarios.size());
    EXPECT_GT(report.value_checks, 0u);
    for (const counterexample& cx : report.counterexamples) {
        ADD_FAILURE() << cx.to_string();
    }
}

TEST(ScenarioVerify, ZeroSlackCornerIsValueCorrect)
{
    // lambda = lambda_min is the allocator's tightest corner (the
    // adder-chain stressor exists exactly for it); verify it separately
    // with a different input stream.
    const sonic_model model;
    verify_options options;
    options.inputs_per_graph = 4;
    options.slack = 0.0;
    options.seed = 77;
    for (const char* name : {"adder_chain16", "fir8", "fft4"}) {
        const scenario s = make_scenario(name);
        const verify_report report =
            verify_graph(s.graph, s.name, model,
                         min_latency(s.graph, model), options);
        for (const counterexample& cx : report.counterexamples) {
            ADD_FAILURE() << cx.to_string();
        }
    }
}

} // namespace
} // namespace mwl
