// Experiment corpora: the paper's evaluation protocol in one place.
//
// "We have generated 200 random sequencing graphs for each problem size |O|
// between 1 and 24 ... The minimum possible latency lambda_min was found for
// each graph, from which various latency constraints were created,
// corresponding to a 0% to 30% relaxation of lambda_min." (paper §3)

#ifndef MWL_TGFF_CORPUS_HPP
#define MWL_TGFF_CORPUS_HPP

#include "model/hardware_model.hpp"
#include "tgff/generator.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mwl {

/// One benchmark instance: a graph and its minimum achievable latency.
struct corpus_entry {
    sequencing_graph graph;
    int lambda_min = 0;
};

/// Deterministic corpus of `count` graphs with `n_ops` operations each.
/// `base_seed` tags the experiment; entry i of a given (n_ops, base_seed)
/// is identical across runs and platforms.
[[nodiscard]] std::vector<corpus_entry> make_corpus(
    std::size_t n_ops, std::size_t count, const hardware_model& model,
    std::uint64_t base_seed, const tgff_options& prototype = {});

/// Latency constraint for a given relaxation: ceil(lambda_min*(1+slack)).
/// slack = 0.0 reproduces the paper's lambda = lambda_min point.
[[nodiscard]] int relaxed_lambda(int lambda_min, double slack);

/// A `make_corpus` call as data, so tools can name a corpus in text form
/// (mwl_batch manifests: `corpus ops=12 count=64 seed=2001 ...`).
struct corpus_spec {
    std::size_t n_ops = 10;
    std::size_t count = 10;
    std::uint64_t seed = 2001;
    tgff_options prototype; ///< n_ops is overridden by the field above

    /// Parse whitespace-free `key=value` tokens: ops, count, seed,
    /// mul-fraction, min-width, max-width. Throws `precondition_error` on
    /// unknown keys or unparseable values.
    [[nodiscard]] static corpus_spec parse(
        const std::vector<std::string>& tokens);
};

/// The corpus a spec describes (same derivation as the base overload).
[[nodiscard]] std::vector<corpus_entry> make_corpus(
    const corpus_spec& spec, const hardware_model& model);

} // namespace mwl

#endif // MWL_TGFF_CORPUS_HPP
