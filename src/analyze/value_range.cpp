#include "analyze/value_range.hpp"

#include "rtl/lifetimes.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <limits>

namespace mwl {
namespace {

/// Signals are < 63 bits by the simulator contract; clamp defensively so
/// a hand-written over-wide graph degrades to "anything" instead of UB.
constexpr int max_width = 62;

int clamp_width(int width)
{
    return std::min(std::max(width, 1), max_width + 1);
}

/// Clamp a 128-bit intermediate back into int64. Only reachable for
/// degenerate over-wide graphs; the fit checks then treat the clamped
/// interval as not fitting any signal width, which is sound.
std::int64_t clamp_to_int64(__int128 v)
{
    constexpr std::int64_t int64_lo = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t int64_hi = std::numeric_limits<std::int64_t>::max();
    if (v < int64_lo) {
        return int64_lo;
    }
    if (v > int64_hi) {
        return int64_hi;
    }
    return static_cast<std::int64_t>(v);
}

value_interval add(const value_interval& a, const value_interval& b)
{
    return {clamp_to_int64(static_cast<__int128>(a.lo) + b.lo),
            clamp_to_int64(static_cast<__int128>(a.hi) + b.hi)};
}

value_interval multiply(const value_interval& a, const value_interval& b)
{
    // Form the four corner products exactly in 128-bit.
    const auto corners = {
        static_cast<__int128>(a.lo) * b.lo, static_cast<__int128>(a.lo) * b.hi,
        static_cast<__int128>(a.hi) * b.lo, static_cast<__int128>(a.hi) * b.hi};
    __int128 lo = *corners.begin();
    __int128 hi = lo;
    for (const __int128 c : corners) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    return {clamp_to_int64(lo), clamp_to_int64(hi)};
}

} // namespace

value_interval full_range(int width)
{
    const int w = clamp_width(width);
    return {-(std::int64_t{1} << (w - 1)),
            (std::int64_t{1} << (w - 1)) - 1};
}

bool fits_width(const value_interval& v, int width)
{
    if (width >= 63) {
        return true;
    }
    const value_interval full = full_range(width);
    return full.lo <= v.lo && v.hi <= full.hi;
}

value_interval wrap_interval(const value_interval& v, int width)
{
    return fits_width(v, width) ? v : full_range(width);
}

range_analysis analyze_ranges(const sequencing_graph& graph)
{
    range_analysis ranges;
    ranges.operand.assign(graph.size(), {});
    ranges.math.assign(graph.size(), {});
    ranges.result.assign(graph.size(), {});

    for (const op_id o : graph.topological_order()) {
        const op_shape& shape = graph.shape(o);
        const auto preds = graph.predecessors(o);
        require(preds.size() <= 2, "operations take at most two operands");

        std::array<value_interval, 2> in;
        for (int port = 0; port < 2; ++port) {
            const int width = operand_width(shape, port);
            if (static_cast<std::size_t>(port) < preds.size()) {
                // Reference semantics wrap the predecessor's (already
                // wrapped) result again at this operation's operand width.
                const value_interval& src =
                    ranges.result[preds[static_cast<std::size_t>(port)]
                                      .value()];
                in[static_cast<std::size_t>(port)] =
                    wrap_interval(src, width);
            } else {
                in[static_cast<std::size_t>(port)] = full_range(width);
            }
        }
        ranges.operand[o.value()] = in;

        value_interval math;
        if (shape.kind() == op_kind::add) {
            math = add(in[0], in[1]);
        } else {
            math = multiply(in[0], in[1]);
        }
        ranges.math[o.value()] = math;
        ranges.result[o.value()] =
            wrap_interval(math, result_width(shape));
    }
    return ranges;
}

} // namespace mwl
