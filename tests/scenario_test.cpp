// Unit tests for the named DSP scenario corpus (src/scenarios/) and the
// allocation-quality report layer (core/quality.hpp): registry shape,
// deterministic construction, simulability bounds, JSON round-trip, and
// the drift detector that powers the golden gate.

#include "core/dpalloc.hpp"
#include "core/quality.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "io/graph_io.hpp"
#include "model/hardware_model.hpp"
#include "scenarios/scenarios.hpp"
#include "support/error.hpp"
#include "tgff/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mwl {
namespace {

TEST(Scenarios, RegistryHasAtLeastEightUniquelyNamedEntries)
{
    const std::vector<scenario> all = all_scenarios();
    EXPECT_GE(all.size(), 8u);
    std::set<std::string> names;
    for (const scenario& s : all) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name " << s.name;
        EXPECT_FALSE(s.description.empty()) << s.name;
        EXPECT_FALSE(s.graph.empty()) << s.name;
    }
    EXPECT_EQ(scenario_names().size(), all.size());
}

TEST(Scenarios, ConstructionIsDeterministic)
{
    // Goldens can only regress quality if the workloads themselves are a
    // fixed point: two constructions must be byte-identical.
    const std::vector<scenario> first = all_scenarios();
    const std::vector<scenario> second = all_scenarios();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].name, second[i].name);
        EXPECT_EQ(write_graph(first[i].graph), write_graph(second[i].graph));
        EXPECT_EQ(graph_fingerprint(first[i].graph),
                  graph_fingerprint(second[i].graph));
    }
}

TEST(Scenarios, MakeScenarioByNameMatchesRegistry)
{
    for (const scenario& s : all_scenarios()) {
        const scenario by_name = make_scenario(s.name);
        EXPECT_EQ(write_graph(by_name.graph), write_graph(s.graph));
    }
}

TEST(Scenarios, UnknownNameThrowsAndListsTheValidOnes)
{
    try {
        static_cast<void>(make_scenario("no_such_kernel"));
        FAIL() << "expected precondition_error";
    } catch (const precondition_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no_such_kernel"), std::string::npos);
        EXPECT_NE(what.find("fir8"), std::string::npos);
    }
}

TEST(Scenarios, EveryOperationStaysSimulable)
{
    // The differential harness compares int64 values; an n x m multiplier
    // produces n + m result bits, so every scenario must keep results
    // comfortably below 63 bits.
    for (const scenario& s : all_scenarios()) {
        for (const op_id o : s.graph.all_ops()) {
            const op_shape& shape = s.graph.shape(o);
            const int result_bits =
                shape.kind() == op_kind::mul
                    ? shape.width_a() + shape.width_b()
                    : shape.width_a() + 1;
            EXPECT_LT(result_bits, 63) << s.name << " op " << o.value();
        }
    }
}

TEST(Scenarios, EveryScenarioAllocatesValidatorClean)
{
    const sonic_model model;
    const quality_options options;
    for (const scenario& s : all_scenarios()) {
        const int lambda = relaxed_lambda(min_latency(s.graph, model),
                                          options.slack);
        const dpalloc_result r = dpalloc(s.graph, model, lambda);
        EXPECT_TRUE(validate_datapath(s.graph, model, r.path, lambda).empty())
            << s.name;
    }
}

TEST(Quality, MetricsMatchTheDatapathInventory)
{
    const sonic_model model;
    const scenario s = make_scenario("fir4");
    const int lambda = relaxed_lambda(min_latency(s.graph, model), 0.25);
    const dpalloc_result r = dpalloc(s.graph, model, lambda);
    const quality_metrics m = measure_quality(s.graph, model, r.path, lambda);
    EXPECT_EQ(m.lambda, lambda);
    EXPECT_EQ(m.latency, r.path.latency);
    EXPECT_EQ(m.fu_count, r.path.instances.size());
    EXPECT_DOUBLE_EQ(m.fu_area, r.path.total_area);
    EXPECT_GT(m.register_count, 0u);
    EXPECT_GT(m.register_area, 0.0);
    EXPECT_DOUBLE_EQ(m.ext_area, m.fu_area + m.register_area + m.mux_area);
}

TEST(Quality, ReportCoversEveryEnabledAllocator)
{
    const sonic_model model;
    const scenario s = make_scenario("fir4"); // 7 ops: ILP is tractable
    const quality_report report =
        measure_quality_report(s.graph, s.name, model);
    ASSERT_EQ(report.allocators.size(), 4u);
    EXPECT_EQ(report.allocators[0].allocator, "dpalloc");
    EXPECT_EQ(report.allocators[1].allocator, "two_stage");
    EXPECT_EQ(report.allocators[2].allocator, "descending");
    EXPECT_EQ(report.allocators[3].allocator, "ilp");
    EXPECT_EQ(report.ops, s.graph.size());
    EXPECT_EQ(report.edges, s.graph.edge_count());
    // The ILP row is a proven optimum: no heuristic may beat it.
    const double optimal = report.allocators[3].metrics.fu_area;
    for (const allocator_quality& a : report.allocators) {
        EXPECT_GE(a.metrics.fu_area, optimal - 1e-9) << a.allocator;
        EXPECT_LE(a.metrics.latency, a.metrics.lambda) << a.allocator;
    }
}

TEST(Quality, JsonRoundTripIsExact)
{
    const sonic_model model;
    for (const char* name : {"fir4", "rgb2ycbcr"}) {
        const scenario s = make_scenario(name);
        const quality_report report =
            measure_quality_report(s.graph, s.name, model);
        const quality_report parsed = parse_quality_report(to_json(report));
        EXPECT_EQ(parsed, report) << name;
    }
}

TEST(Quality, ParseRejectsMalformedAndMismatchedInput)
{
    EXPECT_THROW(static_cast<void>(parse_quality_report("{\"x\": ")),
                 quality_format_error);
    EXPECT_THROW(static_cast<void>(parse_quality_report("[1, 2]")),
                 quality_format_error);
    // A version bump must fail loudly, naming the refresh command.
    try {
        static_cast<void>(parse_quality_report(
            "{\"format_version\": 999, \"scenario\": \"x\"}"));
        FAIL() << "expected quality_format_error";
    } catch (const quality_format_error& e) {
        EXPECT_NE(std::string(e.what()).find("--update-goldens"),
                  std::string::npos);
    }
}

quality_report tiny_report()
{
    quality_report r;
    r.scenario = "tiny";
    r.ops = 3;
    r.edges = 2;
    r.lambda_min = 5;
    allocator_quality a;
    a.allocator = "dpalloc";
    a.metrics.lambda = 6;
    a.metrics.latency = 6;
    a.metrics.fu_count = 2;
    a.metrics.fu_area = 100.0;
    a.metrics.register_count = 3;
    a.metrics.register_area = 12.0;
    a.metrics.mux_count = 1;
    a.metrics.mux_area = 4.0;
    a.metrics.ext_area = 116.0;
    r.allocators.push_back(a);
    return r;
}

TEST(Quality, DiffIsEmptyForIdenticalReports)
{
    const quality_report r = tiny_report();
    EXPECT_TRUE(diff_quality(r, r).empty());
}

TEST(Quality, DiffPinpointsTheDriftedMetric)
{
    const quality_report golden = tiny_report();
    quality_report current = golden;
    current.allocators[0].metrics.fu_area = 110.0;
    current.allocators[0].metrics.ext_area = 126.0;
    const std::vector<metric_drift> drifts = diff_quality(golden, current);
    ASSERT_EQ(drifts.size(), 2u);
    EXPECT_EQ(drifts[0].metric, "fu_area");
    EXPECT_EQ(drifts[0].allocator, "dpalloc");
    EXPECT_DOUBLE_EQ(drifts[0].expected, 100.0);
    EXPECT_DOUBLE_EQ(drifts[0].actual, 110.0);
    EXPECT_EQ(drifts[1].metric, "ext_area");
}

TEST(Quality, DiffRespectsPerMetricTolerances)
{
    const quality_report golden = tiny_report();
    quality_report current = golden;
    current.allocators[0].metrics.fu_area = 109.0;
    current.allocators[0].metrics.ext_area = 125.0;
    current.allocators[0].metrics.latency = 7;
    current.allocators[0].metrics.register_count = 4;
    drift_tolerances tol;
    tol.area_rel = 0.10;   // 10% on areas: both moves admitted
    tol.latency_abs = 1;   // one step of latency admitted
    tol.count_abs = 1;     // one extra register admitted
    EXPECT_TRUE(diff_quality(golden, current, tol).empty());
    tol.area_rel = 0.05;
    const auto drifts = diff_quality(golden, current, tol);
    ASSERT_EQ(drifts.size(), 2u); // both areas outside 5%
    EXPECT_EQ(drifts[0].metric, "fu_area");
}

TEST(Quality, DiffReportsMissingAndExtraAllocators)
{
    const quality_report golden = tiny_report();
    quality_report current = golden;
    current.allocators[0].allocator = "renamed";
    const auto drifts = diff_quality(golden, current);
    ASSERT_EQ(drifts.size(), 2u);
    EXPECT_EQ(drifts[0].allocator, "dpalloc");
    EXPECT_EQ(drifts[0].metric, "present");
    EXPECT_EQ(drifts[1].allocator, "renamed");
}

TEST(Quality, DiffReportsStructuralDrift)
{
    const quality_report golden = tiny_report();
    quality_report current = golden;
    current.ops = 4;
    current.lambda_min = 6;
    const auto drifts = diff_quality(golden, current);
    ASSERT_EQ(drifts.size(), 2u);
    EXPECT_EQ(drifts[0].allocator, "-");
    EXPECT_EQ(drifts[0].metric, "ops");
    EXPECT_EQ(drifts[1].metric, "lambda_min");
}

TEST(Quality, EmptyGraphIsRejected)
{
    const sonic_model model;
    const sequencing_graph empty;
    EXPECT_THROW(
        static_cast<void>(measure_quality_report(empty, "empty", model)),
        precondition_error);
}

} // namespace
} // namespace mwl
