// Unit tests for src/core: the datapath validator, the bound critical path
// (§2.4) and the DPAlloc driver (§2), including a Fig. 1-style worked
// example demonstrating the paper's headline effect -- trading latency
// slack for area by executing small operations on larger, slower
// resources.

#include "core/critical.hpp"
#include "core/datapath.hpp"
#include "core/dpalloc.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

/// Fig. 1-style graph: two independent multiplications feeding an addition.
/// mul12x12 (native 3 cycles), mul8x4 (native 2 cycles), add12 (2 cycles).
sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

// ---------------------------------------------------------- validator --

TEST(Validate, AcceptsDpallocOutput)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    EXPECT_TRUE(validate_datapath(g, model, r.path, 8).empty());
    EXPECT_NO_THROW(require_valid(g, model, r.path, 8));
}

TEST(Validate, DetectsPrecedenceViolation)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    r.path.start[2] = 0; // adder now starts before its producers finish
    const auto bad = validate_datapath(g, model, r.path, -1);
    EXPECT_FALSE(bad.empty());
    EXPECT_THROW(require_valid(g, model, r.path, -1), error);
}

TEST(Validate, DetectsInstanceOverlap)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    // Find an instance with two ops (the shared multiplier at lambda=8)
    // and force its members to overlap.
    bool mutated = false;
    for (const datapath_instance& inst : r.path.instances) {
        if (inst.ops.size() >= 2) {
            r.path.start[inst.ops[1].value()] =
                r.path.start[inst.ops[0].value()];
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate_datapath(g, model, r.path, -1).empty());
}

TEST(Validate, DetectsWordlengthViolation)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 5);
    // Shrink some multiplier instance below its member's width.
    for (datapath_instance& inst : r.path.instances) {
        if (inst.shape.kind() == op_kind::mul) {
            inst.shape = op_shape::multiplier(2, 2);
            inst.latency = model.latency(inst.shape);
            inst.area = model.area(inst.shape);
            break;
        }
    }
    EXPECT_FALSE(validate_datapath(g, model, r.path, -1).empty());
}

TEST(Validate, DetectsWrongAggregates)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    r.path.total_area += 1.0;
    EXPECT_FALSE(validate_datapath(g, model, r.path, -1).empty());
}

TEST(Validate, DetectsLatencyConstraintViolation)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    EXPECT_TRUE(validate_datapath(g, model, r.path, 8).empty());
    EXPECT_FALSE(
        validate_datapath(g, model, r.path, r.path.latency - 1).empty());
}

TEST(Validate, DetectsSizeMismatch)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    dpalloc_result r = dpalloc(g, model, 8);
    r.path.start.pop_back();
    EXPECT_FALSE(validate_datapath(g, model, r.path, -1).empty());
}

// -------------------------------------------------- bound critical path --

TEST(BoundCriticalPath, SerialChainIsAllCritical)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    // lambda=8 solution serialises both mults on one resource; everything
    // lies on the single augmented path.
    const bound_critical_path qb =
        compute_bound_critical_path(g, r.path);
    EXPECT_EQ(qb.augmented_length, 8);
    EXPECT_EQ(qb.ops.size(), 3u);
}

TEST(BoundCriticalPath, ParallelSolutionLeavesSlackOffPath)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 5);
    const bound_critical_path qb =
        compute_bound_critical_path(g, r.path);
    EXPECT_EQ(qb.augmented_length, 5);
    // m2 (2-cycle native) has a cycle of slack against m1's 3 cycles.
    std::vector<bool> in_qb(g.size(), false);
    for (const op_id o : qb.ops) {
        in_qb[o.value()] = true;
    }
    EXPECT_TRUE(in_qb[0]);  // m1 critical
    EXPECT_FALSE(in_qb[1]); // m2 has slack
    EXPECT_TRUE(in_qb[2]);  // sink adder critical
}

TEST(BoundCriticalPath, EmptyGraph)
{
    sequencing_graph g;
    datapath path;
    const bound_critical_path qb = compute_bound_critical_path(g, path);
    EXPECT_TRUE(qb.ops.empty());
    EXPECT_EQ(qb.augmented_length, 0);
}

// -------------------------------------------------------------- dpalloc --

TEST(Dpalloc, Fig1SlackBuysAreaWithSingleMultiplier)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    ASSERT_EQ(min_latency(g, model), 5);

    const dpalloc_result tight = dpalloc(g, model, 5);
    const dpalloc_result slack = dpalloc(g, model, 8);
    require_valid(g, model, tight.path, 5);
    require_valid(g, model, slack.path, 8);

    // Tight: both multipliers in parallel (144 + 32) plus the adder (12).
    EXPECT_DOUBLE_EQ(tight.path.total_area, 188.0);
    EXPECT_EQ(tight.path.instances.size(), 3u);

    // Slack: the 8x4 multiplication executes on the 12x12 multiplier at
    // the larger resource's 3-cycle latency -- the paper's Fig. 1 effect.
    EXPECT_DOUBLE_EQ(slack.path.total_area, 156.0);
    EXPECT_EQ(slack.path.instances.size(), 2u);
}

TEST(Dpalloc, Fig1SelectedWordlengths)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result slack = dpalloc(g, model, 8);
    // m2's selected wordlength is the resource's, not its own.
    EXPECT_EQ(slack.path.selected_shape(op_id(1)),
              op_shape::multiplier(12, 12));
    EXPECT_EQ(slack.path.bound_latency(op_id(1)), 3);
}

TEST(Dpalloc, InfeasibleLambdaThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    EXPECT_THROW(static_cast<void>(dpalloc(g, model, 4)), infeasible_error);
    EXPECT_THROW(static_cast<void>(dpalloc(g, model, 0)), infeasible_error);
}

TEST(Dpalloc, NegativeLambdaThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    EXPECT_THROW(static_cast<void>(dpalloc(g, model, -1)),
                 precondition_error);
}

TEST(Dpalloc, EmptyGraphIsTrivial)
{
    sequencing_graph g;
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 0);
    EXPECT_EQ(r.path.total_area, 0.0);
    EXPECT_EQ(r.path.latency, 0);
    EXPECT_TRUE(r.path.instances.empty());
}

TEST(Dpalloc, SingleOpBindsToOwnShape)
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(16, 12));
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 4); // ceil(28/8) = 4
    require_valid(g, model, r.path, 4);
    ASSERT_EQ(r.path.instances.size(), 1u);
    EXPECT_EQ(r.path.instances[0].shape, op_shape::multiplier(16, 12));
    EXPECT_DOUBLE_EQ(r.path.total_area, 192.0);
}

TEST(Dpalloc, IdenticalParallelOpsEscalateCapacity)
{
    // Two identical independent mults at lambda = lambda_min: wordlength
    // refinement can never split them (single latency tier), so the driver
    // must escalate capacity to find the 2-instance solution.
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    ASSERT_EQ(min_latency(g, model), 2);
    const dpalloc_result r = dpalloc(g, model, 2);
    require_valid(g, model, r.path, 2);
    EXPECT_EQ(r.path.instances.size(), 2u);
    EXPECT_GE(r.stats.escalations, 1u);
}

TEST(Dpalloc, SlackLetsIdenticalOpsShare)
{
    sequencing_graph g;
    g.add_operation(op_shape::multiplier(8, 8));
    g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 4);
    require_valid(g, model, r.path, 4);
    EXPECT_EQ(r.path.instances.size(), 1u);
    EXPECT_EQ(r.stats.escalations, 0u);
    EXPECT_DOUBLE_EQ(r.path.total_area, 64.0);
}

TEST(Dpalloc, MoreSlackNeverIncreasesAreaOnFig1)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    double prev = 1e18;
    for (int lambda = 5; lambda <= 12; ++lambda) {
        const dpalloc_result r = dpalloc(g, model, lambda);
        require_valid(g, model, r.path, lambda);
        EXPECT_LE(r.path.total_area, prev + 1e-9);
        prev = r.path.total_area;
    }
}

TEST(Dpalloc, StatsCountRefinements)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result tight = dpalloc(g, model, 5);
    EXPECT_GE(tight.stats.iterations, 2u); // at least one refinement round
    EXPECT_GE(tight.stats.refinements, 1u);
    EXPECT_GE(tight.stats.edges_deleted, 1u);

    const dpalloc_result slack = dpalloc(g, model, 8);
    EXPECT_EQ(slack.stats.iterations, 1u); // feasible immediately
    EXPECT_EQ(slack.stats.refinements, 0u);
}

TEST(Dpalloc, DeterministicAcrossRuns)
{
    rng random(2024);
    tgff_options opts;
    opts.n_ops = 14;
    const sequencing_graph g = generate_tgff(opts, random);
    const sonic_model model;
    const int lambda = min_latency(g, model) + 2;
    const dpalloc_result a = dpalloc(g, model, lambda);
    const dpalloc_result b = dpalloc(g, model, lambda);
    EXPECT_EQ(a.path.start, b.path.start);
    EXPECT_DOUBLE_EQ(a.path.total_area, b.path.total_area);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

TEST(Dpalloc, UniformModelCollapsesToClassicBehaviour)
{
    // With uniform latencies there is nothing to refine: the first
    // schedule is final whenever lambda >= critical path.
    const sequencing_graph g = fig1_graph();
    const uniform_latency_model model(1);
    const int lambda = min_latency(g, model) + 3;
    const dpalloc_result r = dpalloc(g, model, lambda);
    require_valid(g, model, r.path, lambda);
    EXPECT_EQ(r.stats.refinements, 0u);
}

TEST(Dpalloc, AlwaysFeasibleAndValidOnRandomGraphs)
{
    rng random(555);
    for (int trial = 0; trial < 25; ++trial) {
        tgff_options opts;
        opts.n_ops = 2 + static_cast<std::size_t>(trial) % 14;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const int lmin = min_latency(g, model);
        for (const int extra : {0, 1, 3}) {
            const dpalloc_result r = dpalloc(g, model, lmin + extra);
            require_valid(g, model, r.path, lmin + extra);
        }
    }
}

TEST(Dpalloc, AblationArmsStayValid)
{
    rng random(556);
    tgff_options opts;
    opts.n_ops = 10;
    const sequencing_graph g = generate_tgff(opts, random);
    const sonic_model model;
    const int lambda = min_latency(g, model) + 2;

    for (const bool growth : {true, false}) {
        for (const bool classic : {true, false}) {
            dpalloc_options o;
            o.enable_growth = growth;
            o.classic_constraint = classic;
            const dpalloc_result r = dpalloc(g, model, lambda, o);
            require_valid(g, model, r.path, lambda);
        }
    }
}

TEST(Dpalloc, DescribeRendersEveryInstance)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const dpalloc_result r = dpalloc(g, model, 8);
    const std::string text = describe(r.path, g);
    EXPECT_NE(text.find("mul12x12"), std::string::npos);
    EXPECT_NE(text.find("add12"), std::string::npos);
    EXPECT_NE(text.find("m2"), std::string::npos);
}

} // namespace
} // namespace mwl
