// Unit tests for src/baseline: latency-preserving grouping rules, the
// two-stage [4]-style baseline (FDS + optimal B&B binding) and the greedy
// descending-wordlength partition [14].

#include "baseline/descending.hpp"
#include "baseline/grouping.hpp"
#include "baseline/two_stage.hpp"
#include "core/validate.hpp"
#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

sequencing_graph fig1_graph()
{
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12), "m1");
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4), "m2");
    const op_id a = g.add_operation(op_shape::adder(12), "a");
    g.add_dependency(m1, a);
    g.add_dependency(m2, a);
    return g;
}

// ------------------------------------------------------------ grouping --

TEST(Grouping, EqualLatencyAddersMayShare)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id b = g.add_operation(op_shape::adder(12));
    const sonic_model model;
    const std::vector<int> native{2, 2};
    const std::vector<int> start{0, 2}; // disjoint
    const std::vector<op_id> ops{a, b};
    const auto shape =
        latency_preserving_shape(g, model, ops, start, native);
    ASSERT_TRUE(shape.has_value());
    EXPECT_EQ(*shape, op_shape::adder(12));
}

TEST(Grouping, OverlapForbidsSharing)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id b = g.add_operation(op_shape::adder(12));
    const sonic_model model;
    const std::vector<int> native{2, 2};
    const std::vector<int> start{0, 1};
    const std::vector<op_id> ops{a, b};
    EXPECT_FALSE(
        latency_preserving_shape(g, model, ops, start, native).has_value());
}

TEST(Grouping, LatencyBandMismatchForbidsSharing)
{
    // mul12x12 native 3 cycles, mul8x4 native 2: the join (12x12) would
    // slow the small multiplication down -> not latency preserving.
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 12));
    const op_id m2 = g.add_operation(op_shape::multiplier(8, 4));
    const sonic_model model;
    const std::vector<int> native{3, 2};
    const std::vector<int> start{0, 5};
    const std::vector<op_id> ops{m1, m2};
    EXPECT_FALSE(
        latency_preserving_shape(g, model, ops, start, native).has_value());
}

TEST(Grouping, JoinCrossingLatencyBandForbidsSharing)
{
    // Same native latency but the join crosses a band: (12,4) and (6,10)
    // are both ceil(16/8)=2 cycles, join (12,10) is ceil(22/8)=3 cycles.
    sequencing_graph g;
    const op_id m1 = g.add_operation(op_shape::multiplier(12, 4));
    const op_id m2 = g.add_operation(op_shape::multiplier(6, 10));
    const sonic_model model;
    const std::vector<int> native{2, 2};
    const std::vector<int> start{0, 5};
    const std::vector<op_id> ops{m1, m2};
    EXPECT_FALSE(
        latency_preserving_shape(g, model, ops, start, native).has_value());
}

TEST(Grouping, MixedKindsForbidSharing)
{
    sequencing_graph g;
    const op_id a = g.add_operation(op_shape::adder(8));
    const op_id m = g.add_operation(op_shape::multiplier(8, 8));
    const sonic_model model;
    const std::vector<int> native{2, 2};
    const std::vector<int> start{0, 4};
    const std::vector<op_id> ops{a, m};
    EXPECT_FALSE(
        latency_preserving_shape(g, model, ops, start, native).has_value());
}

// ----------------------------------------------------------- two-stage --

TEST(TwoStage, Fig1CannotExploitSlack)
{
    // The defining weakness the paper exposes: even with slack, the
    // two-stage baseline may not slow the small multiplication down, so
    // both multipliers remain.
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    const two_stage_result tight = two_stage_allocate(g, model, 5);
    const two_stage_result slack = two_stage_allocate(g, model, 8);
    require_valid(g, model, tight.path, 5);
    require_valid(g, model, slack.path, 8);
    EXPECT_TRUE(tight.proven_optimal_binding);
    EXPECT_DOUBLE_EQ(tight.path.total_area, 188.0);
    EXPECT_DOUBLE_EQ(slack.path.total_area, 188.0); // slack wasted
}

TEST(TwoStage, EqualLatencyOpsDoShare)
{
    // A serial chain of adds collapses onto one adder: sharing is allowed
    // inside a latency band.
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(6));
    for (int i = 0; i < 3; ++i) {
        const op_id next = g.add_operation(op_shape::adder(8 + i));
        g.add_dependency(prev, next);
        prev = next;
    }
    const sonic_model model;
    const int lambda = min_latency(g, model);
    const two_stage_result r = two_stage_allocate(g, model, lambda);
    require_valid(g, model, r.path, lambda);
    EXPECT_EQ(r.path.instances.size(), 1u);
    EXPECT_DOUBLE_EQ(r.path.total_area, 10.0); // widest adder
}

TEST(TwoStage, InfeasibleLambdaThrows)
{
    const sequencing_graph g = fig1_graph();
    const sonic_model model;
    EXPECT_THROW(static_cast<void>(two_stage_allocate(g, model, 4)),
                 infeasible_error);
}

TEST(TwoStage, EmptyGraph)
{
    sequencing_graph g;
    const sonic_model model;
    const two_stage_result r = two_stage_allocate(g, model, 0);
    EXPECT_DOUBLE_EQ(r.path.total_area, 0.0);
}

TEST(TwoStage, OptimalBindingBeatsOrMatchesGreedy)
{
    rng random(888);
    for (int trial = 0; trial < 15; ++trial) {
        tgff_options opts;
        opts.n_ops = 8;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const int lambda = min_latency(g, model) + trial % 3;
        const two_stage_result opt = two_stage_allocate(g, model, lambda);
        const datapath greedy = descending_allocate(g, model, lambda);
        require_valid(g, model, opt.path, lambda);
        require_valid(g, model, greedy, lambda);
        EXPECT_LE(opt.path.total_area, greedy.total_area + 1e-9)
            << "trial " << trial;
    }
}

TEST(TwoStage, ValidOnRandomGraphs)
{
    rng random(1234);
    for (int trial = 0; trial < 20; ++trial) {
        tgff_options opts;
        opts.n_ops = 3 + static_cast<std::size_t>(trial) % 10;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const int lambda = min_latency(g, model) + trial % 4;
        const two_stage_result r = two_stage_allocate(g, model, lambda);
        require_valid(g, model, r.path, lambda);
    }
}

// ---------------------------------------------------------- descending --

TEST(Descending, ProducesValidDatapaths)
{
    rng random(4321);
    for (int trial = 0; trial < 20; ++trial) {
        tgff_options opts;
        opts.n_ops = 3 + static_cast<std::size_t>(trial) % 10;
        const sequencing_graph g = generate_tgff(opts, random);
        const sonic_model model;
        const int lambda = min_latency(g, model) + trial % 4;
        const datapath path = descending_allocate(g, model, lambda);
        require_valid(g, model, path, lambda);
    }
}

TEST(Descending, SerialAddChainCollapses)
{
    sequencing_graph g;
    op_id prev = g.add_operation(op_shape::adder(16));
    for (int i = 0; i < 4; ++i) {
        const op_id next = g.add_operation(op_shape::adder(4));
        g.add_dependency(prev, next);
        prev = next;
    }
    const sonic_model model;
    const int lambda = min_latency(g, model);
    const datapath path = descending_allocate(g, model, lambda);
    require_valid(g, model, path, lambda);
    EXPECT_EQ(path.instances.size(), 1u);
    EXPECT_DOUBLE_EQ(path.total_area, 16.0);
}

TEST(Descending, EmptyGraph)
{
    sequencing_graph g;
    const sonic_model model;
    const datapath path = descending_allocate(g, model, 0);
    EXPECT_DOUBLE_EQ(path.total_area, 0.0);
}

} // namespace
} // namespace mwl
