#include "rtl/lifetimes.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {

int result_width(const op_shape& shape)
{
    switch (shape.kind()) {
    case op_kind::add:
        return shape.width_a();
    case op_kind::mul:
        return shape.width_a() + shape.width_b();
    }
    MWL_ASSERT(false && "unreachable");
    return 1;
}

std::vector<value_lifetime> compute_lifetimes(const sequencing_graph& graph,
                                              const datapath& path,
                                              bool legacy_output_recycling)
{
    require(path.start.size() == graph.size(),
            "datapath does not match graph");
    std::vector<value_lifetime> lifetimes;
    lifetimes.reserve(graph.size());
    for (const op_id o : graph.all_ops()) {
        value_lifetime v;
        v.producer = o;
        v.birth = path.start[o.value()] + path.bound_latency(o);
        v.width = result_width(graph.shape(o));
        if (graph.successors(o).empty()) {
            // Primary output: live strictly *past* the final capture edge,
            // so a value captured on the last cycle can never recycle the
            // register of another output still being read from outside.
            // The legacy flag restores the pre-fix death of `latency`.
            v.death = path.latency + (legacy_output_recycling ? 0 : 1);
        } else {
            // Consumers sample their operands for their whole execution
            // span (combinational units with held operand selection), so
            // the value must survive until the last consumer *finishes*.
            v.death = v.birth;
            for (const op_id s : graph.successors(o)) {
                v.death = std::max(v.death, path.start[s.value()] +
                                                path.bound_latency(s));
            }
        }
        // A value consumed the cycle it is produced still occupies storage
        // for that cycle.
        v.death = std::max(v.death, v.birth + 1);
        lifetimes.push_back(v);
    }
    return lifetimes;
}

std::vector<rtl_register> left_edge_allocate(
    const std::vector<value_lifetime>& lifetimes)
{
    std::vector<std::size_t> order(lifetimes.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (lifetimes[a].birth != lifetimes[b].birth) {
            return lifetimes[a].birth < lifetimes[b].birth;
        }
        return lifetimes[a].producer < lifetimes[b].producer;
    });

    std::vector<rtl_register> registers;
    std::vector<int> free_at; // per register, first free cycle
    for (const std::size_t vi : order) {
        const value_lifetime& v = lifetimes[vi];
        // First-fit over registers sorted by construction order; left-edge
        // optimality needs only *a* register free at v.birth.
        std::size_t slot = registers.size();
        for (std::size_t r = 0; r < registers.size(); ++r) {
            if (free_at[r] <= v.birth) {
                slot = r;
                break;
            }
        }
        if (slot == registers.size()) {
            registers.emplace_back();
            free_at.push_back(0);
        }
        registers[slot].values.push_back(vi);
        registers[slot].width = std::max(registers[slot].width, v.width);
        free_at[slot] = v.death;
    }
    return registers;
}

} // namespace mwl
