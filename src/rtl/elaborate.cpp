#include "rtl/elaborate.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <sstream>

namespace mwl {
namespace {

int clog2_at_least_1(int value)
{
    int bits = 1;
    while ((1 << bits) <= value) {
        ++bits;
    }
    return bits;
}

} // namespace

rtl_design elaborate(const sequencing_graph& graph, const datapath& path,
                     const rtl_netlist& net, const std::string& module_name,
                     const elaborate_options& options)
{
    require(!module_name.empty(), "module name must be non-empty");
    require(path.start.size() == graph.size() &&
                path.instance_of_op.size() == graph.size(),
            "datapath does not match graph");
    require(net.lifetimes.size() == graph.size(),
            "netlist does not match graph");

    rtl_design design;
    design.module_name = module_name;
    design.latency = path.latency;
    design.counter_bits = clog2_at_least_1(std::max(path.latency, 1));
    design.n_ops = graph.size();

    design.register_width.reserve(net.registers.size());
    for (const rtl_register& reg : net.registers) {
        design.register_width.push_back(reg.width);
    }

    // Register index per value (value index == op id by construction).
    std::vector<std::size_t> reg_of(graph.size(), 0);
    for (std::size_t r = 0; r < net.registers.size(); ++r) {
        for (const std::size_t vi : net.registers[r].values) {
            reg_of[net.lifetimes[vi].producer.value()] = r;
        }
    }

    // Primary I/O: an operand port with no predecessor is an input; an op
    // without successors is an output. input_index[(op, port)] lets the
    // operand muxes refer back to the port.
    std::vector<std::array<std::size_t, 2>> input_index(
        graph.size(),
        {static_cast<std::size_t>(-1), static_cast<std::size_t>(-1)});
    for (const op_id o : graph.all_ops()) {
        const std::size_t n_preds = graph.predecessors(o).size();
        require(n_preds <= 2, "operations take at most two operands");
        for (int port = static_cast<int>(n_preds); port < 2; ++port) {
            rtl_input in;
            in.op = o;
            in.port = port;
            in.ext_index = static_cast<std::size_t>(port) - n_preds;
            in.width = operand_width(graph.shape(o), port);
            in.name = "in_o" + std::to_string(o.value()) + "_" +
                      std::to_string(port);
            input_index[o.value()][static_cast<std::size_t>(port)] =
                design.inputs.size();
            design.inputs.push_back(std::move(in));
        }
        if (graph.successors(o).empty()) {
            rtl_output out;
            out.op = o;
            out.reg = reg_of[o.value()];
            out.width = result_width(graph.shape(o));
            out.name = "out_o" + std::to_string(o.value());
            design.outputs.push_back(std::move(out));
        }
    }

    // Functional units and their operand selections.
    design.fus.reserve(path.instances.size());
    for (std::size_t i = 0; i < path.instances.size(); ++i) {
        const datapath_instance& inst = path.instances[i];
        rtl_fu fu;
        fu.kind = inst.shape.kind();
        fu.width_a = operand_width(inst.shape, 0);
        fu.width_b = operand_width(inst.shape, 1);
        fu.width_y = result_width(inst.shape);
        fu.signed_arith = !(options.legacy_unsigned_multiply &&
                            inst.shape.kind() == op_kind::mul);
        {
            std::ostringstream comment;
            comment << inst.shape.to_string() << " executing";
            for (const op_id o : inst.ops) {
                comment << " o" << o.value();
            }
            fu.comment = comment.str();
        }
        for (const op_id o : inst.ops) {
            const auto preds = graph.predecessors(o);
            const op_shape& native = graph.shape(o);
            for (int port = 0; port < 2; ++port) {
                rtl_operand_select sel;
                sel.op = o;
                sel.first_cycle = path.start[o.value()];
                sel.last_cycle = path.start[o.value()] + inst.latency - 1;
                int src_width = 0;
                if (static_cast<std::size_t>(port) < preds.size()) {
                    const std::size_t src_reg =
                        reg_of[preds[static_cast<std::size_t>(port)]
                                   .value()];
                    sel.source = {rtl_source::kind::reg, src_reg};
                    src_width = net.registers[src_reg].width;
                } else {
                    const std::size_t in_idx =
                        input_index[o.value()]
                                   [static_cast<std::size_t>(port)];
                    sel.source = {rtl_source::kind::input, in_idx};
                    src_width = design.inputs[in_idx].width;
                }
                const int port_width = port == 0 ? fu.width_a : fu.width_b;
                if (options.legacy_operand_extension) {
                    // Historical bug: straight continuous assignment, so a
                    // narrower source zero-extends into the wider port and
                    // no wrap at the operation's native width happens.
                    sel.adapt.slice_width = std::min(src_width, port_width);
                    sel.adapt.sign_extend = false;
                } else {
                    // Wrap at the *operation's* native operand width, then
                    // sign-extend to the physical port (simulator.cpp
                    // apply_op semantics, now in hardware).
                    sel.adapt.slice_width =
                        std::min(src_width, operand_width(native, port));
                    sel.adapt.sign_extend = true;
                }
                sel.adapt.out_width = port_width;
                fu.select[static_cast<std::size_t>(port)].push_back(sel);
            }
        }
        for (auto& selects : fu.select) {
            std::sort(selects.begin(), selects.end(),
                      [](const rtl_operand_select& x,
                         const rtl_operand_select& y) {
                          return x.first_cycle < y.first_cycle;
                      });
        }
        design.fus.push_back(std::move(fu));
    }

    // Capture schedule: each result latches at the end of its producing
    // operation's last execution cycle, sliced at the operation's native
    // result width and (unless reproducing the legacy bug) sign-extended
    // to the shared register's width.
    design.captures.reserve(graph.size());
    for (const op_id o : graph.all_ops()) {
        rtl_capture cap;
        cap.op = o;
        cap.cycle = path.start[o.value()] + path.bound_latency(o) - 1;
        cap.reg = reg_of[o.value()];
        cap.fu = path.instance_of_op[o.value()];
        cap.adapt.slice_width = result_width(graph.shape(o));
        cap.adapt.out_width = net.registers[cap.reg].width;
        cap.adapt.sign_extend = !options.legacy_capture_extension;
        design.captures.push_back(cap);
    }
    std::sort(design.captures.begin(), design.captures.end(), capture_order);
    return design;
}

} // namespace mwl
