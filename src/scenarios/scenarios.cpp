#include "scenarios/scenarios.hpp"

#include "support/error.hpp"
#include "wordlength/tuned_graph.hpp"

#include <algorithm>
#include <utility>

namespace mwl {
namespace {

std::string idx_name(const std::string& stem, int i)
{
    return stem + std::to_string(i);
}

/// One direct-form-I biquad section (shared with the registry's cascade):
/// y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2, feedback taps wider than
/// feedforward ones. Returns the op producing the section output.
op_id add_biquad_section(sequencing_graph& g, op_id in,
                         const std::string& prefix, int data_width,
                         int ff_width, int fb_width)
{
    const op_id b0 = g.add_operation(
        op_shape::multiplier(data_width, ff_width), prefix + "b0");
    const op_id b1 = g.add_operation(
        op_shape::multiplier(data_width, ff_width), prefix + "b1");
    const op_id b2 = g.add_operation(
        op_shape::multiplier(data_width, ff_width - 2), prefix + "b2");
    const op_id a1 = g.add_operation(
        op_shape::multiplier(data_width, fb_width), prefix + "a1");
    const op_id a2 = g.add_operation(
        op_shape::multiplier(data_width, fb_width - 2), prefix + "a2");
    if (in.is_valid()) {
        g.add_dependency(in, b0);
        g.add_dependency(in, b1);
        g.add_dependency(in, b2);
    }
    const op_id s1 =
        g.add_operation(op_shape::adder(data_width + 2), prefix + "s1");
    const op_id s2 =
        g.add_operation(op_shape::adder(data_width + 2), prefix + "s2");
    const op_id s3 =
        g.add_operation(op_shape::adder(data_width + 3), prefix + "s3");
    const op_id s4 =
        g.add_operation(op_shape::adder(data_width + 3), prefix + "s4");
    g.add_dependency(b0, s1);
    g.add_dependency(b1, s1);
    g.add_dependency(b2, s2);
    g.add_dependency(a1, s2);
    g.add_dependency(s1, s3);
    g.add_dependency(s2, s3);
    g.add_dependency(a2, s4);
    g.add_dependency(s3, s4);
    return s4;
}

/// Plane rotation by a constant angle in the 3-multiplier form
/// (t = c*(a+b); out0 = t + (s-c)*b; out1 = t - (c+s)*a): three
/// multipliers of coefficient width `coeff_width` and three adders.
/// Returns the two rotated outputs.
std::pair<op_id, op_id> add_rotation(sequencing_graph& g, op_id a, op_id b,
                                     const std::string& prefix,
                                     int data_width, int coeff_width)
{
    const op_id sum =
        g.add_operation(op_shape::adder(data_width + 1), prefix + "s");
    g.add_dependency(a, sum);
    g.add_dependency(b, sum);
    const op_id t = g.add_operation(
        op_shape::multiplier(data_width + 1, coeff_width), prefix + "mc");
    g.add_dependency(sum, t);
    const op_id ma = g.add_operation(
        op_shape::multiplier(data_width, coeff_width), prefix + "ma");
    g.add_dependency(a, ma);
    const op_id mb = g.add_operation(
        op_shape::multiplier(data_width, coeff_width), prefix + "mb");
    g.add_dependency(b, mb);
    const op_id o0 =
        g.add_operation(op_shape::adder(data_width + 2), prefix + "o0");
    g.add_dependency(t, o0);
    g.add_dependency(mb, o0);
    const op_id o1 =
        g.add_operation(op_shape::adder(data_width + 2), prefix + "o1");
    g.add_dependency(t, o1);
    g.add_dependency(ma, o1);
    return {o0, o1};
}

} // namespace

sequencing_graph make_fir(std::span<const int> coeff_widths, int data_width,
                          int acc_cap)
{
    require(coeff_widths.size() >= 2, "FIR needs at least 2 taps");
    sequencing_graph g;
    std::vector<op_id> products;
    products.reserve(coeff_widths.size());
    for (std::size_t i = 0; i < coeff_widths.size(); ++i) {
        products.push_back(g.add_operation(
            op_shape::multiplier(data_width, coeff_widths[i]),
            idx_name("tap", static_cast<int>(i))));
    }
    op_id acc = products[0];
    for (std::size_t i = 1; i < products.size(); ++i) {
        // Accumulator wordlength grows with the number of additions so
        // far, capped where an error analysis would truncate.
        const int width =
            std::min(acc_cap, data_width + static_cast<int>(i));
        const op_id sum = g.add_operation(op_shape::adder(width),
                                          idx_name("sum", static_cast<int>(i)));
        g.add_dependency(acc, sum);
        g.add_dependency(products[i], sum);
        acc = sum;
    }
    return g;
}

sequencing_graph make_iir_biquad_cascade(int sections, int data_width)
{
    require(sections >= 1, "IIR cascade needs at least 1 section");
    sequencing_graph g;
    op_id out = op_id::invalid();
    for (int s = 0; s < sections; ++s) {
        // Later sections see an already-shaped signal, so their
        // coefficients get away with slightly less precision.
        out = add_biquad_section(g, out, "s" + std::to_string(s + 1) + "_",
                                 data_width, 10 - 2 * (s % 2),
                                 14 - 2 * (s % 2));
    }
    return g;
}

sequencing_graph make_lattice(std::span<const int> k_widths, int data_width)
{
    require(!k_widths.empty(), "lattice needs at least 1 stage");
    sequencing_graph g;
    // f_i = f_{i-1} + k_i * g_{i-1};  g_i = g_{i-1} + k_i * f_{i-1}.
    // Stage 1 reads the primary inputs (external operands), later stages
    // read the previous stage's outputs.
    op_id f = op_id::invalid();
    op_id gg = op_id::invalid();
    for (std::size_t i = 0; i < k_widths.size(); ++i) {
        const std::string p = "st" + std::to_string(i + 1) + "_";
        const op_id mg = g.add_operation(
            op_shape::multiplier(data_width, k_widths[i]), p + "kg");
        const op_id mf = g.add_operation(
            op_shape::multiplier(data_width, k_widths[i]), p + "kf");
        if (f.is_valid()) {
            g.add_dependency(gg, mg);
            g.add_dependency(f, mf);
        }
        const op_id nf =
            g.add_operation(op_shape::adder(data_width + 1), p + "f");
        const op_id ng =
            g.add_operation(op_shape::adder(data_width + 1), p + "g");
        if (f.is_valid()) {
            g.add_dependency(f, nf);
            g.add_dependency(gg, ng);
        }
        g.add_dependency(mg, nf);
        g.add_dependency(mf, ng);
        f = nf;
        gg = ng;
    }
    return g;
}

sequencing_graph make_fft_butterflies(int points, int data_width,
                                      int twiddle_width)
{
    require(points >= 2 && (points & (points - 1)) == 0,
            "FFT size must be a power of two >= 2");
    sequencing_graph g;
    // lane[k] is the op currently producing lane k (invalid = primary
    // input; the first butterfly stage draws external operands instead).
    std::vector<op_id> lane(static_cast<std::size_t>(points),
                            op_id::invalid());
    int width = data_width;
    int stage = 0;
    for (int half = points / 2; half >= 1; half /= 2, ++stage) {
        const int next_width = width + 1; // one growth bit per stage
        std::vector<op_id> next(lane.size());
        for (int blk = 0; blk < points; blk += 2 * half) {
            for (int k = 0; k < half; ++k) {
                const int ia = blk + k;
                const int ib = blk + k + half;
                const std::string p = "s" + std::to_string(stage + 1) + "_" +
                                      std::to_string(ia) + "_";
                op_id b = lane[ib];
                // Non-trivial rotations (everything after the first
                // stage, upper half of each block) scale the second wing
                // by a twiddle coefficient first.
                if (stage > 0 && k >= half / 2) {
                    const op_id tw = g.add_operation(
                        op_shape::multiplier(width, twiddle_width),
                        p + "tw");
                    if (b.is_valid()) {
                        g.add_dependency(b, tw);
                    }
                    b = tw;
                }
                const op_id add =
                    g.add_operation(op_shape::adder(next_width), p + "a");
                const op_id sub =
                    g.add_operation(op_shape::adder(next_width), p + "b");
                if (lane[ia].is_valid()) {
                    g.add_dependency(lane[ia], add);
                    g.add_dependency(lane[ia], sub);
                }
                if (b.is_valid()) {
                    g.add_dependency(b, add);
                    g.add_dependency(b, sub);
                }
                next[static_cast<std::size_t>(ia)] = add;
                next[static_cast<std::size_t>(ib)] = sub;
            }
        }
        lane = std::move(next);
        width = next_width;
    }
    return g;
}

sequencing_graph make_dct8(int data_width)
{
    sequencing_graph g;
    // Input butterfly stage on (x0,x7) .. (x3,x4): the classic first step
    // of every factored 8-point DCT. All eight adders read primary inputs.
    std::vector<op_id> s(4), d(4);
    for (int i = 0; i < 4; ++i) {
        s[static_cast<std::size_t>(i)] = g.add_operation(
            op_shape::adder(data_width + 1), idx_name("bs", i));
        d[static_cast<std::size_t>(i)] = g.add_operation(
            op_shape::adder(data_width + 1), idx_name("bd", i));
    }
    // Even half: butterflies on (s0,s3), (s1,s2), then the c4 (= cos pi/4)
    // rotation recombining the difference pair.
    const op_id e0 = g.add_operation(op_shape::adder(data_width + 2), "e0");
    const op_id e1 = g.add_operation(op_shape::adder(data_width + 2), "e1");
    const op_id e2 = g.add_operation(op_shape::adder(data_width + 2), "e2");
    const op_id e3 = g.add_operation(op_shape::adder(data_width + 2), "e3");
    g.add_dependency(s[0], e0);
    g.add_dependency(s[3], e0);
    g.add_dependency(s[1], e1);
    g.add_dependency(s[2], e1);
    g.add_dependency(s[0], e2);
    g.add_dependency(s[3], e2);
    g.add_dependency(s[1], e3);
    g.add_dependency(s[2], e3);
    const op_id y0 = g.add_operation(op_shape::adder(data_width + 3), "y0");
    const op_id y4 = g.add_operation(op_shape::adder(data_width + 3), "y4");
    g.add_dependency(e0, y0);
    g.add_dependency(e1, y0);
    g.add_dependency(e0, y4);
    g.add_dependency(e1, y4);
    // c6 rotation on the even difference pair (coefficients of cos 3pi/8
    // need ~10 bits at 12-bit data).
    add_rotation(g, e2, e3, "r6_", data_width + 2, 10);
    // Odd half: two rotations with distinct coefficient precision (c3
    // wider than c1 in the standard integer approximations), then the
    // output butterflies and the sqrt(2) scaling multipliers.
    const auto [r10, r11] =
        add_rotation(g, d[0], d[3], "r1_", data_width + 1, 12);
    const auto [r30, r31] =
        add_rotation(g, d[1], d[2], "r3_", data_width + 1, 9);
    const op_id o0 = g.add_operation(op_shape::adder(data_width + 4), "o0");
    const op_id o1 = g.add_operation(op_shape::adder(data_width + 4), "o1");
    const op_id o2 = g.add_operation(op_shape::adder(data_width + 4), "o2");
    const op_id o3 = g.add_operation(op_shape::adder(data_width + 4), "o3");
    g.add_dependency(r10, o0);
    g.add_dependency(r30, o0);
    g.add_dependency(r11, o1);
    g.add_dependency(r31, o1);
    g.add_dependency(r10, o2);
    g.add_dependency(r30, o2);
    g.add_dependency(r11, o3);
    g.add_dependency(r31, o3);
    const op_id k1 = g.add_operation(
        op_shape::multiplier(data_width + 4, 8), "sqrt2_a");
    g.add_dependency(o1, k1);
    const op_id k2 = g.add_operation(
        op_shape::multiplier(data_width + 4, 8), "sqrt2_b");
    g.add_dependency(o2, k2);
    return g;
}

sequencing_graph make_polyphase_decimator(int phases, int taps_per_phase,
                                          int data_width)
{
    require(phases >= 2, "polyphase decimator needs >= 2 phases");
    require(taps_per_phase >= 2, "polyphase phases need >= 2 taps");
    sequencing_graph g;
    std::vector<op_id> phase_out;
    phase_out.reserve(static_cast<std::size_t>(phases));
    for (int p = 0; p < phases; ++p) {
        // Each subfilter sees every M-th coefficient of the prototype
        // lowpass; precision peaks mid-filter like the full prototype's.
        std::vector<op_id> products;
        products.reserve(static_cast<std::size_t>(taps_per_phase));
        for (int t = 0; t < taps_per_phase; ++t) {
            const int centre = taps_per_phase / 2;
            const int coeff_width =
                std::max(5, 13 - 3 * std::abs(t - centre) - p);
            products.push_back(g.add_operation(
                op_shape::multiplier(data_width, coeff_width),
                "p" + std::to_string(p) + idx_name("t", t)));
        }
        op_id acc = products[0];
        for (int t = 1; t < taps_per_phase; ++t) {
            const op_id sum = g.add_operation(
                op_shape::adder(data_width + t),
                "p" + std::to_string(p) + idx_name("s", t));
            g.add_dependency(acc, sum);
            g.add_dependency(products[static_cast<std::size_t>(t)], sum);
            acc = sum;
        }
        phase_out.push_back(acc);
    }
    op_id acc = phase_out[0];
    for (int p = 1; p < phases; ++p) {
        const op_id sum = g.add_operation(
            op_shape::adder(data_width + taps_per_phase + p),
            idx_name("comb", p));
        g.add_dependency(acc, sum);
        g.add_dependency(phase_out[static_cast<std::size_t>(p)], sum);
        acc = sum;
    }
    return g;
}

sequencing_graph make_rgb_to_ycbcr(int data_width)
{
    sequencing_graph g;
    // Per-entry coefficient precision of the BT.601 integer
    // approximations: the luma row needs the most bits, the chroma
    // corners the fewest.
    const int coeff_width[3][3] = {{10, 11, 9}, {8, 9, 10}, {10, 9, 7}};
    const char* row_name[3] = {"y", "cb", "cr"};
    for (int r = 0; r < 3; ++r) {
        std::vector<op_id> products;
        for (int c = 0; c < 3; ++c) {
            products.push_back(g.add_operation(
                op_shape::multiplier(data_width, coeff_width[r][c]),
                std::string(row_name[r]) + "_m" + std::to_string(c)));
        }
        const op_id s1 = g.add_operation(op_shape::adder(data_width + 2),
                                         std::string(row_name[r]) + "_s1");
        g.add_dependency(products[0], s1);
        g.add_dependency(products[1], s1);
        const op_id s2 = g.add_operation(op_shape::adder(data_width + 3),
                                         std::string(row_name[r]) + "_s2");
        g.add_dependency(s1, s2);
        g.add_dependency(products[2], s2);
        // The +16 / +128 offset; its second operand is external.
        const op_id off = g.add_operation(op_shape::adder(data_width + 3),
                                          std::string(row_name[r]) + "_off");
        g.add_dependency(s2, off);
    }
    return g;
}

sequencing_graph make_adder_chain(int length, int start_width, int width_cap)
{
    require(length >= 1, "adder chain needs at least 1 link");
    sequencing_graph g;
    op_id prev = op_id::invalid();
    for (int i = 0; i < length; ++i) {
        const op_id link = g.add_operation(
            op_shape::adder(std::min(width_cap, start_width + i)),
            idx_name("link", i));
        if (prev.is_valid()) {
            g.add_dependency(prev, link);
        }
        prev = link;
    }
    return g;
}

std::vector<scenario> all_scenarios()
{
    // Fixed order: golden files (tests/goldens/<name>.json) and the tools'
    // --list output follow it. Append only; renaming invalidates goldens.
    std::vector<scenario> out;
    const auto add = [&out](std::string name, std::string description,
                            sequencing_graph graph) {
        out.push_back(
            {std::move(name), std::move(description), std::move(graph)});
    };
    const int fir4_w[] = {6, 10, 10, 6};
    add("fir4", "4-tap direct-form FIR, 10-bit data",
        make_fir(fir4_w, 10));
    const int fir8_w[] = {5, 8, 12, 16, 16, 12, 8, 5};
    add("fir8", "8-tap direct-form FIR, 12-bit data",
        make_fir(fir8_w, 12));
    const int fir16_w[] = {4, 5, 6, 8, 10, 12, 14, 16,
                           16, 14, 12, 10, 8, 6, 5, 4};
    add("fir16", "16-tap direct-form FIR, 12-bit data",
        make_fir(fir16_w, 12));
    add("iir_biquad2", "2-section direct-form-I biquad cascade",
        make_iir_biquad_cascade(2, 12));
    const int lattice_k[] = {10, 8, 6, 5};
    add("lattice4", "4-stage normalised lattice filter",
        make_lattice(lattice_k, 12));
    add("fft4", "4-point radix-2 DIT butterfly network",
        make_fft_butterflies(4, 12, 10));
    add("fft8", "8-point radix-2 DIT butterfly network",
        make_fft_butterflies(8, 12, 10));
    add("dct8", "8-point Loeffler-style DCT",
        make_dct8(12));
    add("polyphase_dec2", "2-phase polyphase decimator, 4 taps/phase",
        make_polyphase_decimator(2, 4, 12));
    add("rgb2ycbcr", "RGB->YCbCr 3x3 constant matrix conversion",
        make_rgb_to_ycbcr(10));
    add("adder_chain16", "16-link consecutive-addition chain stressor",
        make_adder_chain(16, 8));
    // Wordlength-optimizer outputs, pinned as literal fractional
    // assignments so the corpus (and its goldens) stays a deterministic
    // function of nothing. The arrays are mwl_tune results at the spec in
    // each description (gain model=attenuating, base-frac=8, cap=32,
    // seed=2001, max-steps=64, anneal=200, slack=25);
    // tests/wordlength_opt_test.cpp proves the optimizer still reproduces
    // them, so drift in the search surfaces as a test failure, not a
    // silently stale corpus entry.
    const int fir8_tuned_f[] = {10, 10, 11, 10, 10, 10, 10, 10,
                                10, 10, 10, 12, 11, 11, 10};
    add("fir8_tuned1e6",
        "fir8 retuned by mwl_tune to a 1e-6 output-noise budget",
        apply_frac_bits(make_tune_problem(make_fir(fir8_w, 12),
                                          gain_model::attenuating),
                        fir8_tuned_f));
    const int lattice4_tuned_f[] = {9, 9, 9, 9, 9, 9, 9, 9,
                                    8, 9, 9, 9, 8, 8, 8, 8};
    add("lattice4_tuned1e5",
        "lattice4 retuned by mwl_tune to a 1e-5 output-noise budget",
        apply_frac_bits(make_tune_problem(make_lattice(lattice_k, 12),
                                          gain_model::attenuating),
                        lattice4_tuned_f));
    return out;
}

std::vector<std::string> scenario_names()
{
    std::vector<std::string> names;
    for (scenario& s : all_scenarios()) {
        names.push_back(std::move(s.name));
    }
    return names;
}

scenario make_scenario(const std::string& name)
{
    std::vector<scenario> all = all_scenarios();
    for (scenario& s : all) {
        if (s.name == name) {
            return std::move(s);
        }
    }
    std::string known;
    for (const scenario& s : all) {
        known += known.empty() ? "" : ", ";
        known += s.name;
    }
    require(false, "unknown scenario '" + name + "' (known: " + known + ")");
    return {}; // unreachable
}

} // namespace mwl
