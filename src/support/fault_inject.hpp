// Crash-injection harness for the durable result store.
//
// Robustness claims are only worth what their tests inject. Two
// environment variables turn every store write into a potential crash
// site, so the resume-equivalence suite (tests/campaign_test.cpp) and the
// CI kill-and-resume soak can kill a campaign at arbitrary persistence
// boundaries and assert that resuming reproduces the uninterrupted result
// set byte for byte:
//
//   MWL_CRASH_AFTER=<n>  exit the process (code 96) at the n-th store
//                        write -- journal record appends and snapshot
//                        replacements both count.
//   MWL_CRASH_TORN=1     additionally truncate that n-th write midway
//                        (half a journal record; a snapshot temp that is
//                        never renamed), simulating a torn write that the
//                        checksummed framing must detect and discard.
//
// The countdown is process-global and read from the environment once.
// Unset means unarmed: zero overhead beyond one predictable branch.

#ifndef MWL_SUPPORT_FAULT_INJECT_HPP
#define MWL_SUPPORT_FAULT_INJECT_HPP

namespace mwl::fault {

/// Exit code of an injected crash; distinct from every real exit path of
/// the tools (0/1 results, 2 usage, 3 interrupted).
inline constexpr int crash_exit_code = 96;

/// True iff MWL_CRASH_AFTER is set to a positive count.
[[nodiscard]] bool armed();

/// True iff MWL_CRASH_TORN requests the crashing write be torn.
[[nodiscard]] bool torn();

/// Count one store write. Returns true exactly once -- on the write the
/// countdown elects to crash; the caller finishes (or tears) that write
/// and then calls `crash()`. Always false when unarmed.
[[nodiscard]] bool tick();

/// Terminate immediately with `crash_exit_code`, bypassing destructors
/// and atexit handlers -- the closest portable stand-in for `kill -9`
/// that still lets a test distinguish the injected crash.
[[noreturn]] void crash();

} // namespace mwl::fault

#endif // MWL_SUPPORT_FAULT_INJECT_HPP
