#include "serve/server.hpp"

#include "dfg/analysis.hpp"
#include "io/graph_io.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mwl::serve {

namespace {

constexpr int poll_interval_ms = 50;

[[noreturn]] void fail_errno(const std::string& what)
{
    throw error(what + ": " + std::strerror(errno));
}

/// MWL_SERVE_STALL_MS (test knob; see header). Read per job, so one
/// test process can host servers with different stall settings; tests
/// set the variable before the server (and its pool) is constructed.
int stall_ms()
{
    const char* text = std::getenv("MWL_SERVE_STALL_MS");
    return text != nullptr ? std::atoi(text) : 0;
}

int bind_unix_listener(const std::string& path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof addr.sun_path,
            "unix socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        fail_errno("cannot create unix socket");
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        if (errno != EADDRINUSE) {
            ::close(fd);
            fail_errno("cannot bind " + path);
        }
        // A socket file exists. Live server behind it -> hard error; a
        // stale leftover from a crash (nobody accepts) is replaced.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        const bool live =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0;
        if (probe >= 0) {
            ::close(probe);
        }
        if (live) {
            ::close(fd);
            throw error("unix socket " + path +
                        " is already served by a live process");
        }
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr) != 0) {
            ::close(fd);
            fail_errno("cannot bind " + path);
        }
    }
    if (::listen(fd, 128) != 0) {
        ::close(fd);
        fail_errno("cannot listen on " + path);
    }
    return fd;
}

int bind_tcp_listener(const std::string& host, int port, int& bound_port)
{
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "tcp host must be a numeric IPv4 address: " + host);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        fail_errno("cannot create tcp socket");
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        fail_errno("cannot bind " + host + ":" + std::to_string(port));
    }
    if (::listen(fd, 128) != 0) {
        ::close(fd);
        fail_errno("cannot listen on " + host + ":" + std::to_string(port));
    }
    sockaddr_in bound = {};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        bound_port = ntohs(bound.sin_port);
    }
    return fd;
}

} // namespace

server::server(const server_options& options)
    : options_(options),
      engine_(batch_options{options.jobs, options.cache_capacity,
                            options.cache_shards}),
      latency_(options.latency_window_size),
      started_(std::chrono::steady_clock::now())
{
    require(!options.unix_path.empty() || options.tcp_port >= 0,
            "server needs a unix path or a tcp port to listen on");
    require(options.queue_depth >= 1, "queue depth must be >= 1");
    pool_threads_ = engine_.pool().size();
    max_inflight_ = options.max_inflight != 0 ? options.max_inflight
                                              : 4 * pool_threads_;
    if (!options.unix_path.empty()) {
        unix_fd_ = bind_unix_listener(options.unix_path);
    }
    if (options.tcp_port >= 0) {
        try {
            tcp_fd_ =
                bind_tcp_listener(options.tcp_host, options.tcp_port,
                                  tcp_port_);
        } catch (...) {
            if (unix_fd_ >= 0) {
                ::close(unix_fd_);
                ::unlink(options.unix_path.c_str());
            }
            throw;
        }
    }
}

server::~server()
{
    await_tasks();
    if (unix_fd_ >= 0) {
        ::close(unix_fd_);
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
    }
    if (!options_.unix_path.empty()) {
        ::unlink(options_.unix_path.c_str());
    }
}

void server::run(const std::function<bool()>& stop)
{
    for (;;) {
        if (stop && stop()) {
            break;
        }
        pollfd fds[2];
        nfds_t n = 0;
        if (unix_fd_ >= 0) {
            fds[n++] = {unix_fd_, POLLIN, 0};
        }
        if (tcp_fd_ >= 0) {
            fds[n++] = {tcp_fd_, POLLIN, 0};
        }
        const int ready = ::poll(fds, n, poll_interval_ms);
        if (ready > 0) {
            for (nfds_t i = 0; i < n; ++i) {
                if ((fds[i].revents & POLLIN) == 0) {
                    continue;
                }
                const int client = ::accept(fds[i].fd, nullptr, nullptr);
                if (client < 0) {
                    continue;
                }
                if (active_.load(std::memory_order_relaxed) >=
                    options_.max_connections) {
                    response r;
                    r.what = response::status::error;
                    r.message = "server at connection capacity";
                    static_cast<void>(
                        write_frame(client, format_response(r)));
                    ::close(client);
                    continue;
                }
                accepted_.fetch_add(1, std::memory_order_relaxed);
                active_.fetch_add(1, std::memory_order_relaxed);
                const std::lock_guard<std::mutex> lock(connections_mutex_);
                auto conn = std::make_unique<connection>();
                conn->fd = client;
                connection& ref = *conn;
                connections_.push_back(std::move(conn));
                ref.thread = std::thread(
                    [this, &ref] { serve_connection(ref); });
            }
        }
        reap_finished(false);
    }

    // Drain: no new connections, readers stop parsing new frames, every
    // admitted job finishes and is answered, then the threads join.
    draining_.store(true, std::memory_order_relaxed);
    if (unix_fd_ >= 0) {
        ::close(unix_fd_);
        unix_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }
    reap_finished(true);
    await_tasks();
}

void server::reap_finished(bool join_all)
{
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
        connection& conn = **it;
        if (join_all || conn.finished.load(std::memory_order_acquire)) {
            if (conn.thread.joinable()) {
                conn.thread.join();
            }
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void server::retain_task(std::future<void> task)
{
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    // Prune finished tasks first so the list tracks only live work (the
    // global admission bound keeps it small).
    for (auto it = tasks_.begin(); it != tasks_.end();) {
        if (it->wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            it = tasks_.erase(it);
        } else {
            ++it;
        }
    }
    tasks_.push_back(std::move(task));
}

void server::await_tasks()
{
    std::vector<std::future<void>> tail;
    {
        const std::lock_guard<std::mutex> lock(tasks_mutex_);
        tail.swap(tasks_);
    }
    for (std::future<void>& task : tail) {
        task.wait();
    }
}

void server::respond(connection& conn, const response& r)
{
    if (conn.dead.load(std::memory_order_relaxed)) {
        return;
    }
    const std::lock_guard<std::mutex> lock(conn.write_mutex);
    if (!write_frame(conn.fd, format_response(r))) {
        // Peer is gone; pending jobs still finish (their results land in
        // the cache), but nothing more is written to this socket.
        conn.dead.store(true, std::memory_order_relaxed);
    }
}

void server::handle_alloc(connection& conn, request req)
{
    // Admission control, decided on the reader thread before anything is
    // queued: both bounds reject with a retry hint instead of letting the
    // backlog (and every client's latency) grow without bound.
    bool admit = queued_.load(std::memory_order_relaxed) < max_inflight_;
    if (admit) {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        admit = conn.pending < options_.queue_depth;
        if (admit) {
            ++conn.pending;
        }
    }
    if (!admit) {
        rejected_busy_.fetch_add(1, std::memory_order_relaxed);
        response r;
        r.what = response::status::busy;
        r.id = req.id;
        r.retry_after_ms = options_.retry_after_ms;
        respond(conn, r);
        return;
    }
    queued_.fetch_add(1, std::memory_order_relaxed);

    retain_task(engine_.pool().submit(
        [this, &conn, id = req.id, lambda_opt = req.lambda,
         slack = req.slack, graph_text = std::move(req.graph_text)] {
            if (stall_ms() > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stall_ms()));
            }
            response r;
            r.id = id;
            try {
                const sequencing_graph graph =
                    parse_graph_string(graph_text);
                if (graph.empty()) {
                    r.what = response::status::ok;
                } else {
                    const int lambda =
                        lambda_opt ? *lambda_opt
                                   : relaxed_lambda(
                                         min_latency(graph, model_), slack);
                    const stopwatch clock;
                    const batch_engine::outcome out =
                        engine_.run(graph, model_, lambda);
                    const double micros = clock.seconds() * 1e6;
                    latency_.record(micros / 1e3);
                    if (out.ok()) {
                        r.what = response::status::ok;
                        r.lambda = lambda;
                        r.latency = out.result->path.latency;
                        r.area = out.result->path.total_area;
                        r.cached = out.from_cache;
                        r.coalesced = out.coalesced;
                        r.micros = micros;
                    } else {
                        r.what = response::status::error;
                        r.message = out.error;
                    }
                }
            } catch (const std::exception& e) {
                r.what = response::status::error;
                r.message = e.what();
            }
            if (r.what == response::status::ok) {
                ok_responses_.fetch_add(1, std::memory_order_relaxed);
            } else {
                error_responses_.fetch_add(1, std::memory_order_relaxed);
            }
            respond(conn, r);
            queued_.fetch_sub(1, std::memory_order_relaxed);
            {
                const std::lock_guard<std::mutex> lock(pending_mutex_);
                --conn.pending;
            }
            // Server-scope cv: after the decrement above, this worker
            // holds no reference into `conn`, which the reaper may now
            // destroy the moment its reader thread sees pending == 0.
            pending_cv_.notify_all();
        }));
}

void server::serve_connection(connection& conn)
{
    std::string payload;
    while (!draining_.load(std::memory_order_relaxed)) {
        pollfd p = {conn.fd, POLLIN, 0};
        const int ready = ::poll(&p, 1, poll_interval_ms);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;
        }
        if (ready == 0) {
            continue;
        }
        const frame_status status =
            read_frame(conn.fd, payload, options_.max_frame);
        if (status == frame_status::eof) {
            break;
        }
        if (status != frame_status::ok) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            if (status != frame_status::truncated) {
                // Tell the peer why before hanging up; after a bad header
                // or an unread oversized payload the stream is desynced,
                // so the connection cannot continue either way.
                response r;
                r.what = response::status::error;
                r.message =
                    status == frame_status::malformed
                        ? "malformed frame header"
                        : "frame exceeds " +
                              std::to_string(options_.max_frame) + " bytes";
                respond(conn, r);
            }
            break;
        }
        request req;
        try {
            req = parse_request(payload);
        } catch (const protocol_error& e) {
            // The framing is intact, so the connection survives a bad
            // payload: report and keep reading.
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            response r;
            r.what = response::status::error;
            r.message = e.what();
            respond(conn, r);
            continue;
        }
        switch (req.what) {
        case request::kind::ping: {
            response r;
            r.id = req.id;
            respond(conn, r);
            break;
        }
        case request::kind::stats: {
            stats_requests_.fetch_add(1, std::memory_order_relaxed);
            response r;
            r.id = req.id;
            r.body = stats_json();
            respond(conn, r);
            break;
        }
        case request::kind::alloc:
            alloc_requests_.fetch_add(1, std::memory_order_relaxed);
            handle_alloc(conn, std::move(req));
            break;
        }
    }

    // Connection drain: every admitted job is answered (or its write
    // failed against a dead peer) before the socket closes -- whether we
    // got here by client EOF, a protocol error, or a server drain.
    {
        std::unique_lock<std::mutex> lock(pending_mutex_);
        pending_cv_.wait(lock, [&] { return conn.pending == 0; });
    }
    ::close(conn.fd);
    conn.fd = -1;
    active_.fetch_sub(1, std::memory_order_relaxed);
    conn.finished.store(true, std::memory_order_release);
}

server_counters server::counters() const
{
    server_counters c;
    c.accepted = accepted_.load(std::memory_order_relaxed);
    c.active = active_.load(std::memory_order_relaxed);
    c.alloc_requests = alloc_requests_.load(std::memory_order_relaxed);
    c.stats_requests = stats_requests_.load(std::memory_order_relaxed);
    c.ok_responses = ok_responses_.load(std::memory_order_relaxed);
    c.error_responses = error_responses_.load(std::memory_order_relaxed);
    c.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
    c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    c.queued = queued_.load(std::memory_order_relaxed);
    return c;
}

std::string server::stats_json() const
{
    const server_counters c = counters();
    const engine_stats e = engine_.snapshot();
    const latency_summary l = latency_.summarize();
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    const double hit_rate =
        e.submitted != 0
            ? static_cast<double>(e.cache_hits) /
                  static_cast<double>(e.submitted)
            : 0.0;
    std::ostringstream out;
    out << "{\"uptime_seconds\":" << uptime << ",\"server\":{"
        << "\"accepted\":" << c.accepted << ",\"active\":" << c.active
        << ",\"alloc_requests\":" << c.alloc_requests
        << ",\"stats_requests\":" << c.stats_requests
        << ",\"ok_responses\":" << c.ok_responses
        << ",\"error_responses\":" << c.error_responses
        << ",\"rejected_busy\":" << c.rejected_busy
        << ",\"protocol_errors\":" << c.protocol_errors
        << ",\"queued\":" << c.queued
        << ",\"queue_depth\":" << options_.queue_depth
        << ",\"max_inflight\":" << max_inflight_
        << ",\"pool_threads\":" << pool_threads_ << "},\"engine\":{"
        << "\"submitted\":" << e.submitted
        << ",\"executed\":" << e.executed
        << ",\"cache_hits\":" << e.cache_hits
        << ",\"cache_misses\":" << e.cache_misses
        << ",\"hit_rate\":" << hit_rate
        << ",\"coalesced\":" << e.coalesced
        << ",\"errors\":" << e.errors
        << ",\"evictions\":" << e.evictions
        << ",\"in_flight\":" << e.in_flight
        << ",\"cache_size\":" << e.cache_size
        << ",\"cache_capacity\":" << e.cache_capacity
        << "},\"latency_ms\":{"
        << "\"count\":" << l.count << ",\"mean\":" << l.mean
        << ",\"p50\":" << l.p50 << ",\"p99\":" << l.p99
        << ",\"max\":" << l.max << "}}";
    return out.str();
}

} // namespace mwl::serve
