// mwl_client -- client CLI for the mwl_serve allocation daemon.
//
// Three shapes of use:
//
//  * One-shot commands against a running daemon:
//      mwl_client unix:/tmp/mwl.sock ping
//      mwl_client unix:/tmp/mwl.sock stats            # stats JSON
//      mwl_client unix:/tmp/mwl.sock alloc fir.mwl lambda=12
//
//  * Manifest mode -- the mwl_batch manifest grammar (graph/corpus lines
//    with lambda=/slack=; sweep=/verify= are batch-only) pushed through
//    the daemon from C concurrent connections, results reported in
//    manifest order in the same table/JSON shape as mwl_batch:
//      mwl_client unix:/tmp/mwl.sock --manifest jobs.txt --conns 8
//
//  * Soak mode -- each connection sends N requests cycling through the
//    manifest items (pipelined up to --window, honouring busy
//    retry-after backoff), reporting achieved requests/s:
//      echo 'corpus ops=10 count=32' |
//        mwl_client unix:/tmp/mwl.sock --manifest - --soak 200 --conns 8
//
// Exit codes: 0 all responses ok; 1 connect failure, server-reported
// errors, or an unexpected disconnect (tolerated with
// --tolerate-disconnect, for soaks that outlive a draining server);
// 2 usage or manifest errors.

#include "io/graph_io.hpp"
#include "report/table.hpp"
#include "serve/client.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace {

using namespace mwl;

[[noreturn]] void usage(int code)
{
    std::cout <<
        "usage: mwl_client ENDPOINT COMMAND|--manifest FILE [options]\n"
        "  ENDPOINT             unix:PATH or tcp:HOST:PORT\n"
        "commands:\n"
        "  ping                 round-trip check\n"
        "  stats                print the server's stats JSON\n"
        "  alloc FILE [lambda=N|slack=PCT]   allocate one .mwl graph\n"
        "manifest mode:\n"
        "  --manifest FILE      mwl_batch manifest ('-' = stdin);\n"
        "                       graph/corpus lines with lambda=/slack=\n"
        "  --conns C            concurrent connections [1]\n"
        "  --soak N             N requests per connection, cycling the\n"
        "                       manifest items; reports requests/s\n"
        "  --window W           pipelined requests per connection [16]\n"
        "  --json FILE          write results + stats as JSON\n"
        "  --csv                CSV on stdout instead of the table\n"
        "  --tolerate-disconnect   a server drain mid-soak is not an error\n";
    std::exit(code);
}

/// One expanded manifest entry, pre-serialised for the wire.
struct serve_item {
    std::string name;
    std::string graph_text;
    std::optional<int> lambda;
    double slack = 0.0;
};

/// Completed allocation for one item (manifest mode).
struct result_row {
    bool have = false;
    bool ok = false;
    int lambda = 0;
    int latency = 0;
    double area = 0.0;
    bool cached = false;
    bool coalesced = false;
    std::string message;
};

/// Shared tallies across connection workers.
struct soak_totals {
    std::mutex mutex;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t busy_retries = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t lost = 0; ///< outstanding when a connection died
    std::uint64_t connect_failures = 0;
    std::vector<double> latencies_ms; ///< client-observed round trips
};

/// lambda=/slack= on a manifest line; rejects the batch-only directives.
bool take_directive(const std::string& token, serve_item& out)
{
    const auto value_of =
        [&](const char* prefix) -> std::optional<std::string> {
        const std::size_t n = std::string(prefix).size();
        if (token.rfind(prefix, 0) == 0) {
            return token.substr(n);
        }
        return std::nullopt;
    };
    try {
        if (const auto v = value_of("lambda=")) {
            out.lambda = std::stoi(*v);
            return true;
        }
        if (const auto v = value_of("slack=")) {
            out.slack = std::stod(*v) / 100.0;
            require(out.slack >= 0.0, "slack must be non-negative");
            return true;
        }
    } catch (const std::invalid_argument&) {
        require(false, "bad numeric value in '" + token + "'");
    } catch (const std::out_of_range&) {
        require(false, "numeric value out of range in '" + token + "'");
    }
    require(token.rfind("sweep=", 0) != 0,
            "sweep= is not supported over serve (use mwl_batch)");
    require(token.rfind("verify=", 0) != 0,
            "verify= is not supported over serve (use mwl_batch)");
    return false;
}

std::vector<serve_item> parse_manifest(std::istream& in)
{
    std::vector<serve_item> items;
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::istringstream line(raw);
        std::string keyword;
        if (!(line >> keyword) || keyword.front() == '#') {
            continue;
        }
        const auto fail = [&](const std::string& message) {
            std::cerr << "mwl_client: manifest line " << line_no << ": "
                      << message << '\n';
            std::exit(2);
        };
        try {
            if (keyword == "graph") {
                std::string path;
                if (!(line >> path)) {
                    fail("expected 'graph FILE ...'");
                }
                serve_item item;
                item.name = path;
                std::string token;
                while (line >> token) {
                    if (!take_directive(token, item)) {
                        fail("unknown graph token '" + token + "'");
                    }
                }
                std::ifstream gf(path);
                if (!gf) {
                    fail("cannot open graph file " + path);
                }
                item.graph_text = write_graph(parse_graph(gf));
                items.push_back(std::move(item));
            } else if (keyword == "corpus") {
                serve_item prototype;
                std::vector<std::string> spec_tokens;
                std::string token;
                while (line >> token) {
                    if (!take_directive(token, prototype)) {
                        spec_tokens.push_back(token);
                    }
                }
                const corpus_spec spec = corpus_spec::parse(spec_tokens);
                const sonic_model probe;
                for (corpus_entry& e : make_corpus(spec, probe)) {
                    serve_item item = prototype;
                    item.name = "tgff(ops=" + std::to_string(spec.n_ops) +
                                ",seed=" + std::to_string(spec.seed) +
                                ")#" + std::to_string(items.size());
                    item.graph_text = write_graph(e.graph);
                    items.push_back(std::move(item));
                }
            } else {
                fail("unknown keyword '" + keyword + "'");
            }
        } catch (const error& e) {
            fail(e.what());
        }
    }
    return items;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

/// One connection's share of the run: non-soak partitions the items
/// (worker c owns items c, c+C, ...); soak cycles all of them. Pipelines
/// up to `window` outstanding requests, retries busy rejections after
/// the server's suggested backoff.
void run_connection(const serve::endpoint& ep, std::size_t conn_index,
                    std::size_t conns, const std::vector<serve_item>& items,
                    std::size_t soak_requests, std::size_t window,
                    std::vector<result_row>* rows, soak_totals& totals)
{
    std::vector<std::size_t> mine;
    if (soak_requests == 0) {
        for (std::size_t i = conn_index; i < items.size(); i += conns) {
            mine.push_back(i);
        }
    }
    const std::size_t total =
        soak_requests != 0 ? soak_requests : mine.size();
    if (total == 0) {
        return;
    }
    const auto item_of = [&](std::size_t seq) {
        return soak_requests != 0
                   ? (conn_index + seq * conns) % items.size()
                   : mine[seq];
    };

    std::unique_ptr<serve::client_connection> conn;
    try {
        conn = std::make_unique<serve::client_connection>(ep);
    } catch (const error& e) {
        const std::lock_guard<std::mutex> lock(totals.mutex);
        ++totals.connect_failures;
        if (totals.connect_failures == 1) {
            std::cerr << "mwl_client: " << e.what() << '\n';
        }
        return;
    }

    std::unordered_map<std::uint64_t, std::size_t> outstanding;
    std::unordered_map<std::uint64_t, stopwatch> sent_at;
    std::size_t next = 0;
    std::size_t done = 0;
    std::uint64_t busy = 0;
    std::vector<double> latencies;
    bool disconnected = false;

    const auto send_seq = [&](std::uint64_t id, std::size_t item_index) {
        const serve_item& item = items[item_index];
        sent_at[id] = stopwatch();
        return conn->send(serve::format_alloc_request(
            id, item.lambda, item.slack, item.graph_text));
    };

    while (done < total && !disconnected) {
        while (outstanding.size() < window && next < total) {
            const std::size_t item_index = item_of(next);
            if (!send_seq(next, item_index)) {
                disconnected = true;
                break;
            }
            outstanding[next] = item_index;
            ++next;
        }
        if (disconnected || outstanding.empty()) {
            break;
        }
        std::optional<serve::response> resp;
        try {
            resp = conn->receive();
        } catch (const serve::protocol_error&) {
            resp = std::nullopt;
        }
        if (!resp) {
            disconnected = true;
            break;
        }
        const auto it = outstanding.find(resp->id);
        if (it == outstanding.end()) {
            continue; // response to a request we no longer track
        }
        if (resp->what == serve::response::status::busy) {
            ++busy;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(resp->retry_after_ms));
            if (!send_seq(resp->id, it->second)) {
                disconnected = true;
            }
            continue;
        }
        latencies.push_back(sent_at[resp->id].milliseconds());
        sent_at.erase(resp->id);
        const bool ok = resp->what == serve::response::status::ok;
        if (rows != nullptr) {
            result_row& row = (*rows)[it->second];
            row.have = true;
            row.ok = ok;
            row.lambda = resp->lambda;
            row.latency = resp->latency;
            row.area = resp->area;
            row.cached = resp->cached;
            row.coalesced = resp->coalesced;
            row.message = resp->message;
        }
        {
            const std::lock_guard<std::mutex> lock(totals.mutex);
            if (ok) {
                ++totals.ok;
            } else {
                ++totals.errors;
            }
        }
        outstanding.erase(it);
        ++done;
    }

    const std::lock_guard<std::mutex> lock(totals.mutex);
    totals.busy_retries += busy;
    if (disconnected) {
        ++totals.disconnects;
        totals.lost += outstanding.size() + (total - next);
    }
    totals.latencies_ms.insert(totals.latencies_ms.end(),
                               latencies.begin(), latencies.end());
}

int one_shot(const serve::endpoint& ep, const std::string& command,
             const std::vector<std::string>& args)
{
    serve::client_connection conn(ep);
    std::string payload;
    if (command == "ping") {
        payload = serve::format_ping_request(1);
    } else if (command == "stats") {
        payload = serve::format_stats_request(1);
    } else if (command == "alloc") {
        if (args.empty()) {
            std::cerr << "mwl_client: alloc needs a graph file\n";
            usage(2);
        }
        serve_item item;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (!take_directive(args[i], item)) {
                std::cerr << "mwl_client: unknown alloc token '" << args[i]
                          << "'\n";
                usage(2);
            }
        }
        std::ifstream gf(args[0]);
        if (!gf) {
            std::cerr << "mwl_client: cannot open graph file " << args[0]
                      << '\n';
            return 2;
        }
        payload = serve::format_alloc_request(
            1, item.lambda, item.slack, write_graph(parse_graph(gf)));
    } else {
        std::cerr << "mwl_client: unknown command '" << command << "'\n";
        usage(2);
    }
    if (!conn.send(payload)) {
        std::cerr << "mwl_client: server closed the connection\n";
        return 1;
    }
    const auto resp = conn.receive();
    if (!resp) {
        std::cerr << "mwl_client: server closed the connection\n";
        return 1;
    }
    switch (resp->what) {
    case serve::response::status::ok:
        if (command == "stats") {
            std::cout << resp->body << '\n';
        } else if (command == "ping") {
            std::cout << "ok\n";
        } else {
            std::cout << "ok lambda=" << resp->lambda
                      << " latency=" << resp->latency
                      << " area=" << resp->area
                      << " cached=" << (resp->cached ? 1 : 0)
                      << " micros=" << resp->micros << '\n';
        }
        return 0;
    case serve::response::status::busy:
        std::cout << "busy retry-after-ms=" << resp->retry_after_ms << '\n';
        return 1;
    case serve::response::status::error:
        std::cerr << "mwl_client: server error: " << resp->message << '\n';
        return 1;
    }
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    std::signal(SIGPIPE, SIG_IGN);

    std::string endpoint_text;
    std::string command;
    std::vector<std::string> command_args;
    std::string manifest_file;
    std::size_t conns = 1;
    std::size_t soak_requests = 0;
    std::size_t window = 16;
    std::string json_file;
    bool csv = false;
    bool tolerate_disconnect = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "mwl_client: missing value for " << arg << '\n';
                usage(2);
            }
            return argv[++i];
        };
        const auto count_value = [&]() -> std::size_t {
            const std::string text = value();
            try {
                if (!text.empty() && text[0] == '-') {
                    throw std::invalid_argument(text);
                }
                return std::stoul(text);
            } catch (const std::exception&) {
                std::cerr << "mwl_client: bad numeric value '" << text
                          << "' for " << arg << '\n';
                usage(2);
            }
        };
        if (arg == "--manifest") {
            manifest_file = value();
        } else if (arg == "--conns") {
            conns = count_value();
        } else if (arg == "--soak") {
            soak_requests = count_value();
        } else if (arg == "--window") {
            window = count_value();
        } else if (arg == "--json") {
            json_file = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--tolerate-disconnect") {
            tolerate_disconnect = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "mwl_client: unknown option " << arg << '\n';
            usage(2);
        } else if (endpoint_text.empty()) {
            endpoint_text = arg;
        } else if (command.empty() && manifest_file.empty()) {
            command = arg;
        } else {
            command_args.push_back(arg);
        }
    }
    if (endpoint_text.empty() ||
        (command.empty() && manifest_file.empty())) {
        usage(2);
    }
    if (conns < 1 || window < 1) {
        std::cerr << "mwl_client: --conns and --window must be >= 1\n";
        usage(2);
    }

    try {
        const serve::endpoint ep = serve::parse_endpoint(endpoint_text);

        if (manifest_file.empty()) {
            return one_shot(ep, command, command_args);
        }

        // ---- manifest / soak mode ------------------------------------
        std::ifstream file_in;
        std::istream* in = &std::cin;
        if (manifest_file != "-") {
            file_in.open(manifest_file);
            if (!file_in) {
                std::cerr << "mwl_client: cannot open " << manifest_file
                          << '\n';
                return 1;
            }
            in = &file_in;
        }
        const std::vector<serve_item> items = parse_manifest(*in);
        if (items.empty()) {
            std::cerr << "mwl_client: manifest has no entries\n";
            return 2;
        }

        std::vector<result_row> rows(items.size());
        soak_totals totals;
        stopwatch clock;
        {
            std::vector<std::thread> workers;
            workers.reserve(conns);
            for (std::size_t c = 0; c < conns; ++c) {
                workers.emplace_back([&, c] {
                    run_connection(ep, c, conns, items, soak_requests,
                                   window,
                                   soak_requests == 0 ? &rows : nullptr,
                                   totals);
                });
            }
            for (std::thread& w : workers) {
                w.join();
            }
        }
        const double wall = clock.seconds();
        const std::uint64_t answered = totals.ok + totals.errors;
        const double throughput =
            wall > 0.0 ? static_cast<double>(answered) / wall : 0.0;

        std::ostringstream json;
        json << "{\"results\":[";
        bool first = true;
        int failures = 0;
        if (soak_requests == 0) {
            table t("mwl_client results");
            t.header({"entry", "kind", "lambda", "latency", "area",
                      "status"});
            for (std::size_t i = 0; i < items.size(); ++i) {
                const result_row& row = rows[i];
                if (!row.have) {
                    continue; // lost to a disconnect: no fabricated rows
                }
                const std::string status =
                    !row.ok ? "error: " + row.message
                    : row.cached ? "cached"
                    : row.coalesced ? "coalesced"
                                    : "computed";
                if (!row.ok) {
                    ++failures;
                }
                t.row({items[i].name, "alloc", table::num(row.lambda),
                       table::num(row.latency), table::num(row.area, 1),
                       status});
                json << (first ? "" : ",") << "{\"entry\":\""
                     << json_escape(items[i].name)
                     << "\",\"kind\":\"alloc\",\"lambda\":" << row.lambda
                     << ",\"latency\":" << row.latency
                     << ",\"area\":" << row.area << ",\"status\":\""
                     << json_escape(status) << "\"}";
                first = false;
            }
            if (csv) {
                t.print_csv(std::cout);
            } else {
                t.print(std::cout);
            }
        }

        double p50 = 0.0;
        double p99 = 0.0;
        {
            p50 = percentile(totals.latencies_ms, 50.0);
            p99 = percentile(totals.latencies_ms, 99.0);
        }
        json << "],\"stats\":{\"entries\":" << items.size()
             << ",\"conns\":" << conns
             << ",\"requests\":" << answered
             << ",\"ok\":" << totals.ok
             << ",\"errors\":" << totals.errors
             << ",\"busy_retries\":" << totals.busy_retries
             << ",\"disconnects\":" << totals.disconnects
             << ",\"lost\":" << totals.lost
             << ",\"latency_p50_ms\":" << p50
             << ",\"latency_p99_ms\":" << p99
             << ",\"wall_seconds\":" << wall
             << ",\"requests_per_second\":" << throughput << "}}";

        std::cout << "\nserve: " << answered << " responses ("
                  << totals.ok << " ok, " << totals.errors << " errors, "
                  << totals.busy_retries << " busy retries, "
                  << totals.disconnects << " disconnects) over " << conns
                  << " conns, " << table::num(wall * 1e3, 1) << " ms, "
                  << table::num(throughput, 1) << " req/s, p50 "
                  << table::num(p50, 2) << " ms, p99 "
                  << table::num(p99, 2) << " ms\n";

        if (!json_file.empty()) {
            std::ofstream out(json_file);
            if (!out) {
                std::cerr << "mwl_client: cannot write " << json_file
                          << '\n';
                return 1;
            }
            out << json.str() << '\n';
            std::cout << "json written to " << json_file << '\n';
        }

        if (totals.connect_failures != 0) {
            return 1;
        }
        if (failures != 0 || totals.errors != 0) {
            return 1;
        }
        if (totals.disconnects != 0 && !tolerate_disconnect) {
            std::cerr << "mwl_client: " << totals.disconnects
                      << " connection(s) closed with " << totals.lost
                      << " request(s) unanswered\n";
            return 1;
        }
        return 0;
    } catch (const precondition_error& e) {
        std::cerr << "mwl_client: " << e.what() << '\n';
        return 2;
    } catch (const error& e) {
        std::cerr << "mwl_client: " << e.what() << '\n';
        return 1;
    }
}
