// Greedy descending-wordlength clique partitioning in the style of [14]
// (Kum & Sung): bind on a fixed wordlength-blind schedule by visiting
// operations in descending wordlength order and placing each into the
// first latency-preserving group that accepts it. The cheap-and-cheerful
// end of the baseline spectrum; the two-stage baseline replaces this greedy
// pass with optimal branch and bound.

#ifndef MWL_BASELINE_DESCENDING_HPP
#define MWL_BASELINE_DESCENDING_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"
#include "model/hardware_model.hpp"

namespace mwl {

/// Allocate a datapath with the greedy descending-wordlength baseline.
/// Throws `infeasible_error` when lambda is below the minimum latency.
[[nodiscard]] datapath descending_allocate(const sequencing_graph& graph,
                                           const hardware_model& model,
                                           int lambda);

} // namespace mwl

#endif // MWL_BASELINE_DESCENDING_HPP
