// Sequencing graph P(O, S).
//
// The paper's input model (after De Micheli [7]): a DAG whose vertices are
// fixed-point operations with a-priori wordlengths, and whose directed edges
// are data dependencies ("o1 must complete before o2 starts"). The graph is
// append-only: operations and dependencies can be added, never removed,
// which keeps op_ids stable (they are dense indices 0..size()-1).

#ifndef MWL_DFG_SEQUENCING_GRAPH_HPP
#define MWL_DFG_SEQUENCING_GRAPH_HPP

#include "model/op_shape.hpp"
#include "support/ids.hpp"

#include <span>
#include <string>
#include <vector>

namespace mwl {

/// One vertex of the sequencing graph.
struct operation {
    op_shape shape;
    std::string name; ///< optional, for diagnostics and DOT dumps
};

class sequencing_graph {
public:
    /// Append an operation; returns its dense id.
    op_id add_operation(op_shape shape, std::string name = {});

    /// Add the data dependency "from completes before to starts".
    /// Duplicate edges are ignored. Throws `precondition_error` on invalid
    /// ids, self-loops, or an edge that would create a cycle.
    void add_dependency(op_id from, op_id to);

    [[nodiscard]] std::size_t size() const { return ops_.size(); }
    [[nodiscard]] bool empty() const { return ops_.empty(); }

    [[nodiscard]] const operation& op(op_id id) const;
    [[nodiscard]] const op_shape& shape(op_id id) const { return op(id).shape; }

    [[nodiscard]] std::span<const op_id> predecessors(op_id id) const;
    [[nodiscard]] std::span<const op_id> successors(op_id id) const;

    [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

    /// All operation ids, dense ascending (0, 1, ..., size()-1).
    [[nodiscard]] std::vector<op_id> all_ops() const;

    /// A topological order of all operations. The graph is maintained
    /// acyclic by construction, so this always succeeds.
    [[nodiscard]] std::vector<op_id> topological_order() const;

    /// True iff `to` is reachable from `from` through dependency edges.
    [[nodiscard]] bool reaches(op_id from, op_id to) const;

private:
    void check_id(op_id id) const;

    std::vector<operation> ops_;
    std::vector<std::vector<op_id>> preds_;
    std::vector<std::vector<op_id>> succs_;
    std::size_t edge_count_ = 0;
};

} // namespace mwl

#endif // MWL_DFG_SEQUENCING_GRAPH_HPP
