// Unit tests for src/tgff: generator invariants (size, acyclicity,
// determinism, wordlength ranges) and the experiment corpus helpers.

#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "tgff/corpus.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

TEST(Tgff, ProducesRequestedSize)
{
    rng random(1);
    for (const std::size_t n : {1u, 5u, 24u}) {
        tgff_options opts;
        opts.n_ops = n;
        EXPECT_EQ(generate_tgff(opts, random).size(), n);
    }
}

TEST(Tgff, DeterministicForSeed)
{
    tgff_options opts;
    opts.n_ops = 15;
    rng r1(77);
    rng r2(77);
    const sequencing_graph a = generate_tgff(opts, r1);
    const sequencing_graph b = generate_tgff(opts, r2);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (const op_id o : a.all_ops()) {
        EXPECT_EQ(a.shape(o), b.shape(o));
        const auto sa = a.successors(o);
        const auto sb = b.successors(o);
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i], sb[i]);
        }
    }
}

TEST(Tgff, DifferentSeedsDiffer)
{
    tgff_options opts;
    opts.n_ops = 15;
    rng r1(1);
    rng r2(2);
    const sequencing_graph a = generate_tgff(opts, r1);
    const sequencing_graph b = generate_tgff(opts, r2);
    bool any_diff = a.edge_count() != b.edge_count();
    for (const op_id o : a.all_ops()) {
        any_diff = any_diff || a.shape(o) != b.shape(o);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Tgff, WidthsInsideConfiguredRange)
{
    tgff_options opts;
    opts.n_ops = 50;
    opts.min_width = 6;
    opts.max_width = 10;
    rng random(3);
    const sequencing_graph g = generate_tgff(opts, random);
    for (const op_id o : g.all_ops()) {
        const op_shape& s = g.shape(o);
        EXPECT_GE(s.width_a(), 6);
        EXPECT_LE(s.width_a(), 10);
        if (s.kind() == op_kind::mul) {
            EXPECT_GE(s.width_b(), 6);
            EXPECT_LE(s.width_b(), 10);
        }
    }
}

TEST(Tgff, MulFractionExtremes)
{
    tgff_options opts;
    opts.n_ops = 30;
    opts.mul_fraction = 0.0;
    rng r1(4);
    const sequencing_graph all_add = generate_tgff(opts, r1);
    for (const op_id o : all_add.all_ops()) {
        EXPECT_EQ(all_add.shape(o).kind(), op_kind::add);
    }
    opts.mul_fraction = 1.0;
    rng r2(4);
    const sequencing_graph all_mul = generate_tgff(opts, r2);
    for (const op_id o : all_mul.all_ops()) {
        EXPECT_EQ(all_mul.shape(o).kind(), op_kind::mul);
    }
}

TEST(Tgff, FanInBounded)
{
    tgff_options opts;
    opts.n_ops = 40;
    opts.max_fan_in = 2;
    rng random(5);
    const sequencing_graph g = generate_tgff(opts, random);
    for (const op_id o : g.all_ops()) {
        EXPECT_LE(g.predecessors(o).size(), 2u);
    }
}

TEST(Tgff, GraphIsConnectedEnoughToBeInteresting)
{
    // With attach probability 1 every non-root op has a predecessor.
    tgff_options opts;
    opts.n_ops = 20;
    opts.attach_probability = 1.0;
    rng random(6);
    const sequencing_graph g = generate_tgff(opts, random);
    std::size_t roots = 0;
    for (const op_id o : g.all_ops()) {
        roots += g.predecessors(o).empty() ? 1u : 0u;
    }
    EXPECT_EQ(roots, 1u);
}

TEST(Tgff, InvalidOptionsThrow)
{
    rng random(7);
    tgff_options opts;
    opts.n_ops = 0;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts.n_ops = 3;
    opts.min_width = 8;
    opts.max_width = 4;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts = {};
    opts.mul_fraction = 1.5;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts = {};
    opts.max_fan_in = 0;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
}

// -------------------------------------------------------------- corpus --

TEST(Corpus, SizesAndLambdaMin)
{
    const sonic_model model;
    const auto corpus = make_corpus(6, 10, model, 42);
    ASSERT_EQ(corpus.size(), 10u);
    for (const corpus_entry& e : corpus) {
        EXPECT_EQ(e.graph.size(), 6u);
        EXPECT_EQ(e.lambda_min, min_latency(e.graph, model));
        EXPECT_GE(e.lambda_min, 1);
    }
}

TEST(Corpus, DeterministicAndPrefixStable)
{
    const sonic_model model;
    const auto a = make_corpus(5, 4, model, 7);
    const auto b = make_corpus(5, 8, model, 7);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].lambda_min, b[i].lambda_min);
        EXPECT_EQ(a[i].graph.size(), b[i].graph.size());
        EXPECT_EQ(a[i].graph.edge_count(), b[i].graph.edge_count());
    }
}

TEST(Corpus, SeedsSeparateCorpora)
{
    const sonic_model model;
    const auto a = make_corpus(8, 5, model, 1);
    const auto b = make_corpus(8, 5, model, 2);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_diff = any_diff ||
                   a[i].graph.edge_count() != b[i].graph.edge_count() ||
                   a[i].lambda_min != b[i].lambda_min;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Corpus, RelaxedLambdaRounding)
{
    EXPECT_EQ(relaxed_lambda(10, 0.0), 10);
    EXPECT_EQ(relaxed_lambda(10, 0.05), 11); // ceil(10.5)
    EXPECT_EQ(relaxed_lambda(10, 0.30), 13);
    EXPECT_EQ(relaxed_lambda(7, 0.10), 8);   // ceil(7.7)
}

TEST(Corpus, NegativeSlackThrows)
{
    EXPECT_THROW(static_cast<void>(relaxed_lambda(10, -0.1)),
                 precondition_error);
}

} // namespace
} // namespace mwl
