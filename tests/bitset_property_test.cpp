// Property tests for the word-parallel support kernels
// (support/bitset.hpp) and the WCG's bit-matrix adjacency views: every
// randomized operation sequence is mirrored against a std::set reference
// model, so any divergence between the packed-word fast paths and plain
// set semantics names the failing seed (MWL_BITSET_SEED).

#include "model/hardware_model.hpp"
#include "support/bitset.hpp"
#include "support/rng.hpp"
#include "tgff/generator.hpp"
#include "wcg/wcg.hpp"

#include "test_seed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mwl {
namespace {

TEST(BitsetModel, RandomMutationsMatchSetSemantics)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_BITSET_SEED", 0xB1751);
    MWL_TRACE_SEED("MWL_BITSET_SEED", seed);
    rng random(seed);

    constexpr std::size_t bits = 200; // deliberately not a word multiple
    dyn_bitset bs(bits);
    std::set<std::size_t> model;

    for (int step = 0; step < 4000; ++step) {
        const std::size_t i =
            static_cast<std::size_t>(random.uniform(0, bits - 1));
        switch (random.uniform_int(0, 2)) {
        case 0:
            bs.set(i);
            model.insert(i);
            break;
        case 1:
            bs.reset(i);
            model.erase(i);
            break;
        default:
            ASSERT_EQ(bs.test(i), model.count(i) == 1) << "bit " << i;
            break;
        }
        if (step % 250 == 0) {
            ASSERT_EQ(bs.count(), model.size());
            const std::size_t first_unset = [&] {
                for (std::size_t b = 0; b < bits; ++b) {
                    if (model.count(b) == 0) {
                        return b;
                    }
                }
                return bits;
            }();
            ASSERT_EQ(bs.first_unset(), first_unset);
            ASSERT_EQ(bs.all_set(), model.size() == bits);

            // bits_for_each must visit exactly the members, ascending --
            // the order downstream CSR rebuilds rely on.
            std::vector<std::size_t> visited;
            bits_for_each(bs.words(), bs.word_count(),
                          [&](std::size_t b) { visited.push_back(b); });
            ASSERT_TRUE(std::is_sorted(visited.begin(), visited.end()));
            ASSERT_TRUE(std::equal(visited.begin(), visited.end(),
                                   model.begin(), model.end()));
        }
    }
}

TEST(BitsetModel, PairwiseKernelsMatchSetAlgebra)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_BITSET_SEED", 0xB1752);
    MWL_TRACE_SEED("MWL_BITSET_SEED", seed);
    rng random(seed);

    for (int round = 0; round < 50; ++round) {
        const std::size_t bits =
            static_cast<std::size_t>(random.uniform(1, 300));
        const std::size_t words = bits_words(bits);
        std::vector<std::uint64_t> a(words, 0);
        std::vector<std::uint64_t> b(words, 0);
        std::set<std::size_t> ma;
        std::set<std::size_t> mb;
        for (std::size_t i = 0; i < bits; ++i) {
            if (random.chance(0.4)) {
                bits_set(a.data(), i);
                ma.insert(i);
            }
            if (random.chance(0.4)) {
                bits_set(b.data(), i);
                mb.insert(i);
            }
        }

        const std::size_t diff = [&] {
            std::size_t count = 0;
            for (const std::size_t v : ma) {
                count += mb.count(v) == 0 ? 1u : 0u;
            }
            return count;
        }();
        ASSERT_EQ(bits_andnot_count(a.data(), b.data(), words), diff);
        ASSERT_EQ(bits_subset(a.data(), b.data(), words),
                  std::includes(mb.begin(), mb.end(), ma.begin(), ma.end()));
        ASSERT_EQ(bits_any(a.data(), words), !ma.empty());
        ASSERT_EQ(bits_count(a.data(), words), ma.size());

        std::vector<std::uint64_t> u = a;
        bits_or(u.data(), b.data(), words);
        std::vector<std::uint64_t> x = a;
        bits_and(x.data(), b.data(), words);
        for (std::size_t i = 0; i < bits; ++i) {
            ASSERT_EQ(bits_test(u.data(), i),
                      ma.count(i) == 1 || mb.count(i) == 1);
            ASSERT_EQ(bits_test(x.data(), i),
                      ma.count(i) == 1 && mb.count(i) == 1);
        }
    }
}

// ------------------------------------------------ WCG adjacency model --

/// Reference H relation rebuilt from first principles (shape coverage),
/// then mutated alongside the WCG under random legal edge deletions.
struct wcg_model {
    std::vector<std::set<std::size_t>> res_of_op; ///< H(o)
    std::vector<std::set<std::size_t>> ops_of_res; ///< O(r)
    std::size_t edges = 0;
};

wcg_model build_model(const sequencing_graph& g,
                      const wordlength_compatibility_graph& wcg)
{
    wcg_model m;
    m.res_of_op.resize(g.size());
    m.ops_of_res.resize(wcg.resource_count());
    for (const op_id o : g.all_ops()) {
        for (std::size_t r = 0; r < wcg.resource_count(); ++r) {
            if (wcg.resource(res_id{r}).covers(g.shape(o))) {
                m.res_of_op[o.value()].insert(r);
                m.ops_of_res[r].insert(o.value());
                ++m.edges;
            }
        }
    }
    return m;
}

void expect_wcg_matches_model(const sequencing_graph& g,
                              const wordlength_compatibility_graph& wcg,
                              const wcg_model& m)
{
    ASSERT_EQ(wcg.edge_count(), m.edges);
    for (const op_id o : g.all_ops()) {
        const auto& row = m.res_of_op[o.value()];
        const std::span<const res_id> csr = wcg.resources_for(o);
        ASSERT_EQ(csr.size(), row.size());
        auto it = row.begin();
        for (const res_id r : csr) {
            ASSERT_EQ(r.value(), *it++); // ascending, exactly the members
        }
        // The bit row, the CSR row, and compatible() must agree.
        int upper = 0;
        int lower = 0;
        for (std::size_t r = 0; r < wcg.resource_count(); ++r) {
            const bool in_model = row.count(r) == 1;
            ASSERT_EQ(wcg.compatible(o, res_id{r}), in_model);
            ASSERT_EQ(bits_test(wcg.resources_row(o).data(), r), in_model);
            if (in_model) {
                const int lat = wcg.latency(res_id{r});
                upper = std::max(upper, lat);
                lower = lower == 0 ? lat : std::min(lower, lat);
            }
        }
        ASSERT_EQ(wcg.latency_upper_bound(o), upper);
        ASSERT_EQ(wcg.latency_lower_bound(o), lower);
        ASSERT_EQ(wcg.refinable(o), lower < upper);
    }
    for (std::size_t r = 0; r < wcg.resource_count(); ++r) {
        const auto& row = m.ops_of_res[r];
        const std::span<const op_id> csr = wcg.ops_for(res_id{r});
        ASSERT_EQ(csr.size(), row.size());
        auto it = row.begin();
        for (const op_id o : csr) {
            ASSERT_EQ(o.value(), *it++);
        }
        for (const op_id o : g.all_ops()) {
            ASSERT_EQ(bits_test(wcg.ops_row(res_id{r}).data(), o.value()),
                      row.count(o.value()) == 1);
        }
    }
}

TEST(WcgModel, RandomDeletionsTrackSetReference)
{
    const std::uint64_t seed =
        testing::env_seed("MWL_BITSET_SEED", 0xB1753);
    MWL_TRACE_SEED("MWL_BITSET_SEED", seed);
    rng random(seed);

    tgff_options opts;
    opts.n_ops = 40;
    sequencing_graph g = generate_tgff(opts, random);
    const sonic_model model;
    wordlength_compatibility_graph wcg(g, model);
    wcg_model m = build_model(g, wcg);

    expect_wcg_matches_model(g, wcg, m);

    std::uint64_t last_version = wcg.edge_version();
    for (int round = 0; round < 200; ++round) {
        // Pick a random deletable edge: |H(o)| must stay >= 1.
        std::vector<std::size_t> deletable;
        for (const op_id o : g.all_ops()) {
            if (m.res_of_op[o.value()].size() >= 2) {
                deletable.push_back(o.value());
            }
        }
        if (deletable.empty()) {
            break;
        }
        const std::size_t ov = deletable[static_cast<std::size_t>(
            random.uniform(0, deletable.size() - 1))];
        const auto& row = m.res_of_op[ov];
        auto it = row.begin();
        std::advance(it, static_cast<long>(
                             random.uniform(0, row.size() - 1)));
        const std::size_t rv = *it;

        wcg.delete_edge(op_id{ov}, res_id{rv});
        m.res_of_op[ov].erase(rv);
        m.ops_of_res[rv].erase(ov);
        --m.edges;

        ASSERT_GT(wcg.edge_version(), last_version);
        last_version = wcg.edge_version();
        if (round % 20 == 0) {
            expect_wcg_matches_model(g, wcg, m);
        }
    }
    expect_wcg_matches_model(g, wcg, m);
}

} // namespace
} // namespace mwl
