// Bound critical path (paper §2.4).
//
// When a scheduled-and-bound solution violates the latency constraint, the
// refinement step needs the subset of operations whose latency reduction
// could shorten the design. The paper augments the sequencing graph's edge
// set S with serialisation edges
//
//   S^b = { (o1, o2) : start(o1) + l(o1) == start(o2),
//           o1 and o2 bound to the same resource instance }
//
// (l = bound latency) and defines the *bound critical path* Q^b as the
// operations whose ASAP and ALAP times coincide with respect to the
// augmented graph, with the augmented critical-path length as the ALAP
// horizon.

#ifndef MWL_CORE_CRITICAL_HPP
#define MWL_CORE_CRITICAL_HPP

#include "core/datapath.hpp"
#include "dfg/sequencing_graph.hpp"

#include <vector>

namespace mwl {

struct bound_critical_path {
    std::vector<op_id> ops;      ///< members of Q^b, ascending id
    int augmented_length = 0;    ///< critical-path length of the augmented graph
};

/// Compute Q^b for a (possibly constraint-violating) allocation.
[[nodiscard]] bound_critical_path compute_bound_critical_path(
    const sequencing_graph& graph, const datapath& path);

} // namespace mwl

#endif // MWL_CORE_CRITICAL_HPP
