// Content hashing for job deduplication and result caching.
//
// The batch engine identifies an allocation job by a fingerprint of its
// inputs (graph structure, hardware model, lambda, options). Fingerprints
// must be stable across runs and platforms -- they key the result cache and
// appear in tool output -- so this is a fixed algorithm (64-bit FNV-1a over
// an explicit field serialisation), not std::hash.

#ifndef MWL_SUPPORT_HASH_HPP
#define MWL_SUPPORT_HASH_HPP

#include <cstdint>
#include <string_view>

namespace mwl {

/// Streaming 64-bit FNV-1a. Feed fields with `mix`; equal sequences of
/// mixed values produce equal digests on every platform.
class fnv1a_hasher {
public:
    static constexpr std::uint64_t offset_basis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    constexpr void mix_byte(unsigned char b)
    {
        state_ = (state_ ^ b) * prime;
    }

    /// Mix an integral value as 8 little-endian bytes (sign-extended), so
    /// the digest does not depend on the host's int width or endianness.
    constexpr void mix(std::int64_t value)
    {
        auto u = static_cast<std::uint64_t>(value);
        for (int i = 0; i < 8; ++i) {
            mix_byte(static_cast<unsigned char>(u & 0xff));
            u >>= 8;
        }
    }

    void mix(std::string_view text)
    {
        mix(static_cast<std::int64_t>(text.size()));
        for (const char c : text) {
            mix_byte(static_cast<unsigned char>(c));
        }
    }

    /// Doubles in the models are exact small values (areas, latencies);
    /// hash the bit pattern, which is identical wherever the value is.
    void mix(double value)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(value));
        __builtin_memcpy(&bits, &value, sizeof(bits));
        mix(static_cast<std::int64_t>(bits));
    }

    [[nodiscard]] constexpr std::uint64_t digest() const { return state_; }

private:
    std::uint64_t state_ = offset_basis;
};

} // namespace mwl

#endif // MWL_SUPPORT_HASH_HPP
