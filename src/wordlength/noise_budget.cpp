#include "wordlength/noise_budget.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace mwl {

double truncation_noise_power(int frac_bits)
{
    MWL_ASSERT(frac_bits >= 0);
    const double lsb = std::pow(2.0, -frac_bits);
    return lsb * lsb / 12.0;
}

std::vector<double> output_gains(const sequencing_graph& graph,
                                 std::span<const double> coeff_gain)
{
    require(coeff_gain.size() == graph.size(),
            "coefficient-gain vector must cover every operation");
    for (const op_id o : graph.all_ops()) {
        if (graph.shape(o).kind() == op_kind::mul) {
            require(coeff_gain[o.value()] > 0.0,
                    "multiplier coefficient gain must be positive");
        }
    }

    // gain[o] = squared L2 gain from o's output to the system output:
    // traverse in reverse topological order; an edge into successor s
    // scales by s's own input gain (1 for adders, coeff^2 for mults).
    std::vector<double> gain(graph.size(), 0.0);
    const std::vector<op_id> order = graph.topological_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const op_id o = *it;
        if (graph.successors(o).empty()) {
            gain[o.value()] = 1.0;
            continue;
        }
        double total = 0.0;
        for (const op_id s : graph.successors(o)) {
            const double through =
                graph.shape(s).kind() == op_kind::mul
                    ? coeff_gain[s.value()] * coeff_gain[s.value()]
                    : 1.0;
            total += through * gain[s.value()];
        }
        gain[o.value()] = total;
    }
    return gain;
}

wordlength_assignment assign_fractional_widths(const sequencing_graph& graph,
                                               std::span<const double> gains,
                                               const noise_spec& spec)
{
    require(gains.size() == graph.size(),
            "gain vector must cover every operation");
    // Name the offending field: the wordlength optimizer feeds this from
    // user spec files, so "noise_spec.budget must be ..." is the
    // difference between a fixable diagnostic and a scavenger hunt. A
    // non-finite budget or gain would otherwise sail through (inf > 0)
    // and corrupt the water-filling log2 below.
    require(std::isfinite(spec.budget),
            "noise_spec.budget must be finite");
    require(spec.budget > 0.0, "noise_spec.budget must be positive");
    require(spec.min_frac_bits >= 0,
            "noise_spec.min_frac_bits must be non-negative");
    require(spec.min_frac_bits <= spec.max_frac_bits,
            "noise_spec.min_frac_bits must not exceed "
            "noise_spec.max_frac_bits");
    for (std::size_t i = 0; i < gains.size(); ++i) {
        require(std::isfinite(gains[i]),
                "gains[" + std::to_string(i) + "] must be finite");
        require(gains[i] >= 0.0,
                "gains[" + std::to_string(i) + "] must be non-negative");
    }

    const std::size_t n = graph.size();
    wordlength_assignment result;
    result.frac_bits.assign(n, spec.max_frac_bits);
    if (n == 0) {
        return result;
    }

    const auto noise_of = [&](const std::vector<int>& f) {
        double total = 0.0;
        for (std::size_t o = 0; o < n; ++o) {
            total += gains[o] * truncation_noise_power(f[o]);
        }
        return total;
    };

    require_feasible(noise_of(result.frac_bits) <= spec.budget,
                     "noise budget unreachable even at maximum precision");

    // Water-filling start: equal per-op noise share P/N.
    const double share =
        spec.budget / static_cast<double>(n);
    for (std::size_t o = 0; o < n; ++o) {
        if (gains[o] == 0.0) {
            result.frac_bits[o] = spec.min_frac_bits; // never reaches output
            continue;
        }
        // gains[o] * 2^{-2f}/12 <= share  =>  f >= log2(gains[o]/(12*share))/2
        const double f_real =
            0.5 * std::log2(gains[o] / (12.0 * share));
        const int f = static_cast<int>(std::ceil(f_real));
        result.frac_bits[o] =
            std::clamp(f, spec.min_frac_bits, spec.max_frac_bits);
    }
    // Clamping at max_frac_bits may have pushed us over budget; repair by
    // growing the cheapest violator... growing is impossible past max, so
    // instead grow the *other* ops back toward max until the budget holds.
    {
        std::vector<std::size_t> by_gain(n);
        for (std::size_t i = 0; i < n; ++i) {
            by_gain[i] = i;
        }
        std::sort(by_gain.begin(), by_gain.end(),
                  [&](std::size_t a, std::size_t b) {
                      return gains[a] > gains[b];
                  });
        std::size_t at = 0;
        while (noise_of(result.frac_bits) > spec.budget) {
            MWL_ASSERT(at < n); // feasible at all-max, so repair terminates
            result.frac_bits[by_gain[at]] = spec.max_frac_bits;
            ++at;
        }
    }

    // Greedy trim: repeatedly drop one bit from the operation whose
    // reduction adds the least output noise, while the budget holds.
    bool improved = true;
    while (improved) {
        improved = false;
        double current = noise_of(result.frac_bits);
        std::size_t best = n;
        double best_delta = 0.0;
        for (std::size_t o = 0; o < n; ++o) {
            if (result.frac_bits[o] <= spec.min_frac_bits) {
                continue;
            }
            const double delta =
                gains[o] * (truncation_noise_power(result.frac_bits[o] - 1) -
                            truncation_noise_power(result.frac_bits[o]));
            if (current + delta <= spec.budget &&
                (best == n || delta < best_delta)) {
                best = o;
                best_delta = delta;
            }
        }
        if (best != n) {
            --result.frac_bits[best];
            improved = true;
        }
    }

    result.noise_power = noise_of(result.frac_bits);
    MWL_ASSERT(result.noise_power <= spec.budget);
    return result;
}

} // namespace mwl
