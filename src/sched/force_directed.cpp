#include "sched/force_directed.hpp"

#include "dfg/analysis.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <limits>

namespace mwl {
namespace {

struct frames {
    std::vector<int> lo; ///< earliest start per op
    std::vector<int> hi; ///< latest start per op
};

/// Tighten [lo, hi] to respect precedence; returns false if any frame
/// becomes empty.
bool propagate(const sequencing_graph& graph, std::span<const int> latencies,
               const std::vector<op_id>& topo, frames& f)
{
    for (const op_id o : topo) {
        for (const op_id p : graph.predecessors(o)) {
            f.lo[o.value()] = std::max(f.lo[o.value()],
                                       f.lo[p.value()] + latencies[p.value()]);
        }
    }
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const op_id o = *it;
        for (const op_id s : graph.successors(o)) {
            f.hi[o.value()] = std::min(f.hi[o.value()],
                                       f.hi[s.value()] - latencies[o.value()]);
        }
    }
    for (std::size_t i = 0; i < f.lo.size(); ++i) {
        if (f.lo[i] > f.hi[i]) {
            return false;
        }
    }
    return true;
}

/// Sum over types and steps of squared expected occupancy.
double distribution_cost(const sequencing_graph& graph,
                         std::span<const int> latencies, const frames& f,
                         int horizon)
{
    // dg[y][t]
    std::vector<std::vector<double>> dg(
        2, std::vector<double>(static_cast<std::size_t>(horizon), 0.0));
    for (const op_id o : graph.all_ops()) {
        const std::size_t y =
            graph.shape(o).kind() == op_kind::add ? 0u : 1u;
        const int lo = f.lo[o.value()];
        const int hi = f.hi[o.value()];
        const double prob = 1.0 / static_cast<double>(hi - lo + 1);
        for (int s = lo; s <= hi; ++s) {
            for (int t = s; t < s + latencies[o.value()]; ++t) {
                MWL_ASSERT(t < horizon);
                dg[y][static_cast<std::size_t>(t)] += prob;
            }
        }
    }
    double cost = 0.0;
    for (const auto& row : dg) {
        for (const double x : row) {
            cost += x * x;
        }
    }
    return cost;
}

} // namespace

std::vector<int> force_directed_schedule(const sequencing_graph& graph,
                                         std::span<const int> latencies,
                                         int horizon)
{
    require(latencies.size() == graph.size(),
            "latency vector size must equal the number of operations");
    if (graph.empty()) {
        return {};
    }

    frames f;
    f.lo = asap_start_times(graph, latencies);
    f.hi = alap_start_times(graph, latencies, horizon); // checks feasibility
    const std::vector<op_id> topo = graph.topological_order();

    for (;;) {
        // Next operation to fix: any with a non-collapsed frame.
        std::vector<op_id> open;
        for (const op_id o : graph.all_ops()) {
            if (f.lo[o.value()] < f.hi[o.value()]) {
                open.push_back(o);
            }
        }
        if (open.empty()) {
            break;
        }

        double best_cost = std::numeric_limits<double>::infinity();
        op_id best_op;
        int best_start = 0;
        frames best_frames;
        for (const op_id o : open) {
            for (int s = f.lo[o.value()]; s <= f.hi[o.value()]; ++s) {
                frames trial = f;
                trial.lo[o.value()] = s;
                trial.hi[o.value()] = s;
                if (!propagate(graph, latencies, topo, trial)) {
                    continue;
                }
                const double cost =
                    distribution_cost(graph, latencies, trial, horizon);
                if (cost < best_cost) {
                    best_cost = cost;
                    best_op = o;
                    best_start = s;
                    best_frames = std::move(trial);
                }
            }
        }
        // Fixing any op at its ASAP time is always feasible, so a candidate
        // was found.
        MWL_ASSERT(best_op.is_valid());
        static_cast<void>(best_start);
        f = std::move(best_frames);
    }

    return f.lo;
}

} // namespace mwl
