// Fig. 5: execution time vs problem size for the heuristic and the ILP
// solution, at lambda = lambda_min (the regime *most favourable* to the
// ILP, as the paper stresses -- its variable count grows with lambda).
//
// Expected shape: the heuristic's time grows polynomially and stays orders
// of magnitude below the ILP's, whose time explodes with |O| ("between one
// and two orders of magnitude greater time" already at 10 operations).
//
// Default: 10 graphs/size, sizes 1..10.

#include "bench_common.hpp"
#include "core/dpalloc.hpp"
#include "ilp/formulation.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"
#include "tgff/corpus.hpp"

#include <iostream>
#include <vector>

int main(int argc, char** argv)
{
    using namespace mwl;
    bench::bench_options opt =
        bench::parse_options(argc, argv, "fig5_exec_time");
    if (opt.graphs == 25) {
        opt.graphs = 10; // ILP-heavy bench
    }
    const std::size_t max_size = opt.max_size == 0 ? 10 : opt.max_size;

    const sonic_model model;
    table t("Fig. 5: mean execution time per graph at lambda = lambda_min");
    t.header({"|O|", "heuristic ms", "ILP ms", "ratio", "ILP solved"});

    for (std::size_t n = 1; n <= max_size; ++n) {
        const auto corpus = make_corpus(n, opt.graphs, model, opt.seed);
        std::vector<double> heur_ms;
        std::vector<double> ilp_ms;
        std::size_t solved = 0;
        for (const corpus_entry& e : corpus) {
            stopwatch heur_clock;
            const dpalloc_result heur =
                dpalloc(e.graph, model, e.lambda_min);
            heur_ms.push_back(heur_clock.milliseconds());
            static_cast<void>(heur);

            stopwatch ilp_clock;
            mip_options mopt;
            mopt.time_limit_seconds = opt.ilp_time_limit;
            const ilp_result best =
                solve_ilp(e.graph, model, e.lambda_min, mopt);
            ilp_ms.push_back(ilp_clock.milliseconds());
            solved += best.status == mip_status::optimal ? 1u : 0u;
        }
        const double h = mean(heur_ms);
        const double i = mean(ilp_ms);
        t.row({table::num(static_cast<int>(n)), table::num(h, 3),
               table::num(i, 2), table::num(h > 0.0 ? i / h : 0.0, 0) + "x",
               table::num(static_cast<int>(solved)) + "/" +
                   table::num(static_cast<int>(corpus.size()))});
    }
    bench::emit(t, opt);
    std::cout << "\n(paper: ILP takes one to two orders of magnitude longer"
                 " over 1..10 operations;\n ILP times here are lower bounds"
                 " wherever the time limit truncated the search)\n";
    return 0;
}
