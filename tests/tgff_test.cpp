// Unit tests for src/tgff: generator invariants (size, acyclicity,
// determinism, wordlength ranges) and the experiment corpus helpers.

#include "dfg/analysis.hpp"
#include "model/hardware_model.hpp"
#include "support/error.hpp"
#include "tgff/corpus.hpp"
#include "tgff/generator.hpp"

#include <gtest/gtest.h>

namespace mwl {
namespace {

TEST(Tgff, ProducesRequestedSize)
{
    rng random(1);
    for (const std::size_t n : {1u, 5u, 24u}) {
        tgff_options opts;
        opts.n_ops = n;
        EXPECT_EQ(generate_tgff(opts, random).size(), n);
    }
}

TEST(Tgff, DeterministicForSeed)
{
    tgff_options opts;
    opts.n_ops = 15;
    rng r1(77);
    rng r2(77);
    const sequencing_graph a = generate_tgff(opts, r1);
    const sequencing_graph b = generate_tgff(opts, r2);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (const op_id o : a.all_ops()) {
        EXPECT_EQ(a.shape(o), b.shape(o));
        const auto sa = a.successors(o);
        const auto sb = b.successors(o);
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i], sb[i]);
        }
    }
}

TEST(Tgff, DifferentSeedsDiffer)
{
    tgff_options opts;
    opts.n_ops = 15;
    rng r1(1);
    rng r2(2);
    const sequencing_graph a = generate_tgff(opts, r1);
    const sequencing_graph b = generate_tgff(opts, r2);
    bool any_diff = a.edge_count() != b.edge_count();
    for (const op_id o : a.all_ops()) {
        any_diff = any_diff || a.shape(o) != b.shape(o);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Tgff, WidthsInsideConfiguredRange)
{
    tgff_options opts;
    opts.n_ops = 50;
    opts.min_width = 6;
    opts.max_width = 10;
    rng random(3);
    const sequencing_graph g = generate_tgff(opts, random);
    for (const op_id o : g.all_ops()) {
        const op_shape& s = g.shape(o);
        EXPECT_GE(s.width_a(), 6);
        EXPECT_LE(s.width_a(), 10);
        if (s.kind() == op_kind::mul) {
            EXPECT_GE(s.width_b(), 6);
            EXPECT_LE(s.width_b(), 10);
        }
    }
}

TEST(Tgff, MulFractionExtremes)
{
    tgff_options opts;
    opts.n_ops = 30;
    opts.mul_fraction = 0.0;
    rng r1(4);
    const sequencing_graph all_add = generate_tgff(opts, r1);
    for (const op_id o : all_add.all_ops()) {
        EXPECT_EQ(all_add.shape(o).kind(), op_kind::add);
    }
    opts.mul_fraction = 1.0;
    rng r2(4);
    const sequencing_graph all_mul = generate_tgff(opts, r2);
    for (const op_id o : all_mul.all_ops()) {
        EXPECT_EQ(all_mul.shape(o).kind(), op_kind::mul);
    }
}

TEST(Tgff, FanInBounded)
{
    tgff_options opts;
    opts.n_ops = 40;
    opts.max_fan_in = 2;
    rng random(5);
    const sequencing_graph g = generate_tgff(opts, random);
    for (const op_id o : g.all_ops()) {
        EXPECT_LE(g.predecessors(o).size(), 2u);
    }
}

TEST(Tgff, GraphIsConnectedEnoughToBeInteresting)
{
    // With attach probability 1 every non-root op has a predecessor.
    tgff_options opts;
    opts.n_ops = 20;
    opts.attach_probability = 1.0;
    rng random(6);
    const sequencing_graph g = generate_tgff(opts, random);
    std::size_t roots = 0;
    for (const op_id o : g.all_ops()) {
        roots += g.predecessors(o).empty() ? 1u : 0u;
    }
    EXPECT_EQ(roots, 1u);
}

TEST(Tgff, InvalidOptionsThrow)
{
    rng random(7);
    tgff_options opts;
    opts.n_ops = 0;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts.n_ops = 3;
    opts.min_width = 8;
    opts.max_width = 4;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts = {};
    opts.mul_fraction = 1.5;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
    opts = {};
    opts.max_fan_in = 0;
    EXPECT_THROW(static_cast<void>(generate_tgff(opts, random)),
                 precondition_error);
}

// ------------------------------------------------- large-graph presets --

struct graph_shape {
    std::size_t roots = 0;
    std::size_t max_out = 0;
    std::size_t edges = 0;
    int depth = 0; ///< operations on the longest dependency chain
};

graph_shape shape_of(const sequencing_graph& g)
{
    graph_shape s;
    std::vector<int> depth(g.size(), 1);
    for (const op_id o : g.all_ops()) {
        s.roots += g.predecessors(o).empty() ? 1u : 0u;
        s.max_out = std::max(s.max_out, g.successors(o).size());
        s.edges += g.successors(o).size();
        for (const op_id p : g.predecessors(o)) {
            depth[o.value()] = std::max(depth[o.value()], depth[p.value()] + 1);
        }
        s.depth = std::max(s.depth, depth[o.value()]);
    }
    return s;
}

TEST(Tgff, LegacyStreamUnchanged)
{
    // The locality_window option must not perturb the legacy (window = 0)
    // random stream: this pins one whole default-options graph by shape.
    // Any drift here silently invalidates every seeded corpus in the repo.
    rng random(12345 + 150);
    tgff_options opts;
    opts.n_ops = 150;
    const graph_shape s = shape_of(generate_tgff(opts, random));
    EXPECT_EQ(s.edges, 175u);
    EXPECT_EQ(s.roots, 26u);
    EXPECT_EQ(s.depth, 8);
    EXPECT_EQ(s.max_out, 8u);
}

TEST(Tgff, WholePrefixSamplingDegeneratesAtScale)
{
    // Documents why large_graph_preset exists: with whole-prefix
    // attachment at n = 1000 the depth plateaus around 20, ~15% of all
    // operations are roots, and early operations turn into fan-out hubs.
    // Exact pins (deterministic stream) so the numbers cannot rot.
    rng random(12345 + 1000);
    tgff_options opts;
    opts.n_ops = 1000;
    const graph_shape s = shape_of(generate_tgff(opts, random));
    EXPECT_EQ(s.roots, 158u);   // ~16% of ops start new chains
    EXPECT_EQ(s.depth, 20);     // plateau: no deeper than tiny graphs
    EXPECT_EQ(s.max_out, 14u);  // unbounded hubs form on early ops
    EXPECT_EQ(s.edges, 1266u);
}

TEST(Tgff, PresetDepthScalesWithSize)
{
    // The windowed preset keeps depth growing with n_ops and bounds the
    // root fraction and fan-out -- the properties the degenerate legacy
    // shape loses (WholePrefixSamplingDegeneratesAtScale above).
    int last_depth = 0;
    for (const std::size_t n : {500u, 1000u, 2000u}) {
        rng random(large_graph_seed_base + n);
        const sequencing_graph g =
            generate_tgff(large_graph_preset(n), random);
        const graph_shape s = shape_of(g);
        EXPECT_GT(s.depth, last_depth) << "n=" << n;
        EXPECT_GE(s.depth, static_cast<int>(n / 16)) << "n=" << n;
        EXPECT_LE(s.roots, n / 8) << "n=" << n;
        EXPECT_LE(s.max_out, 16u) << "n=" << n;
        last_depth = s.depth;
    }
}

TEST(Tgff, PresetShapePinned)
{
    // Bit-level pins for the bench-tier graphs (seed base + n). The
    // large-graph bench and identity tests assume exactly these graphs.
    const struct {
        std::size_t n;
        std::size_t roots, max_out, edges;
        int depth;
    } expected[] = {
        {500, 24, 9, 930, 37},
        {1000, 63, 11, 1839, 65},
        {2000, 100, 9, 3751, 136},
    };
    for (const auto& e : expected) {
        rng random(large_graph_seed_base + e.n);
        const graph_shape s =
            shape_of(generate_tgff(large_graph_preset(e.n), random));
        EXPECT_EQ(s.roots, e.roots) << "n=" << e.n;
        EXPECT_EQ(s.depth, e.depth) << "n=" << e.n;
        EXPECT_EQ(s.max_out, e.max_out) << "n=" << e.n;
        EXPECT_EQ(s.edges, e.edges) << "n=" << e.n;
    }
}

TEST(Tgff, LocalityWindowBoundsPredecessorDistance)
{
    tgff_options opts;
    opts.n_ops = 300;
    opts.locality_window = 16;
    opts.attach_probability = 1.0;
    rng random(9);
    const sequencing_graph g = generate_tgff(opts, random);
    for (const op_id o : g.all_ops()) {
        for (const op_id p : g.predecessors(o)) {
            EXPECT_LE(o.value() - p.value(), 16u);
        }
    }
}

TEST(Tgff, PresetDeterministicForSeed)
{
    rng r1(large_graph_seed_base + 500);
    rng r2(large_graph_seed_base + 500);
    const sequencing_graph a = generate_tgff(large_graph_preset(500), r1);
    const sequencing_graph b = generate_tgff(large_graph_preset(500), r2);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.edge_count(), b.edge_count());
    for (const op_id o : a.all_ops()) {
        EXPECT_EQ(a.shape(o), b.shape(o));
    }
}

// -------------------------------------------------------------- corpus --

TEST(Corpus, SizesAndLambdaMin)
{
    const sonic_model model;
    const auto corpus = make_corpus(6, 10, model, 42);
    ASSERT_EQ(corpus.size(), 10u);
    for (const corpus_entry& e : corpus) {
        EXPECT_EQ(e.graph.size(), 6u);
        EXPECT_EQ(e.lambda_min, min_latency(e.graph, model));
        EXPECT_GE(e.lambda_min, 1);
    }
}

TEST(Corpus, DeterministicAndPrefixStable)
{
    const sonic_model model;
    const auto a = make_corpus(5, 4, model, 7);
    const auto b = make_corpus(5, 8, model, 7);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].lambda_min, b[i].lambda_min);
        EXPECT_EQ(a[i].graph.size(), b[i].graph.size());
        EXPECT_EQ(a[i].graph.edge_count(), b[i].graph.edge_count());
    }
}

TEST(Corpus, SeedsSeparateCorpora)
{
    const sonic_model model;
    const auto a = make_corpus(8, 5, model, 1);
    const auto b = make_corpus(8, 5, model, 2);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_diff = any_diff ||
                   a[i].graph.edge_count() != b[i].graph.edge_count() ||
                   a[i].lambda_min != b[i].lambda_min;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Corpus, RelaxedLambdaRounding)
{
    EXPECT_EQ(relaxed_lambda(10, 0.0), 10);
    EXPECT_EQ(relaxed_lambda(10, 0.05), 11); // ceil(10.5)
    EXPECT_EQ(relaxed_lambda(10, 0.30), 13);
    EXPECT_EQ(relaxed_lambda(7, 0.10), 8);   // ceil(7.7)
}

TEST(Corpus, NegativeSlackThrows)
{
    EXPECT_THROW(static_cast<void>(relaxed_lambda(10, -0.1)),
                 precondition_error);
}

} // namespace
} // namespace mwl
