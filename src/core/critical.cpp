#include "core/critical.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {
namespace {

/// The augmented graph is only needed transiently; we materialise it as
/// adjacency lists over op indices (S edges plus S^b edges).
struct augmented_graph {
    std::vector<std::vector<std::size_t>> succs;
    std::vector<std::vector<std::size_t>> preds;
};

augmented_graph build_augmented(const sequencing_graph& graph,
                                const datapath& path)
{
    const std::size_t n = graph.size();
    augmented_graph aug;
    aug.succs.resize(n);
    aug.preds.resize(n);
    const auto add_edge = [&](std::size_t from, std::size_t to) {
        auto& row = aug.succs[from];
        if (std::find(row.begin(), row.end(), to) == row.end()) {
            row.push_back(to);
            aug.preds[to].push_back(from);
        }
    };
    for (const op_id o : graph.all_ops()) {
        for (const op_id s : graph.successors(o)) {
            add_edge(o.value(), s.value());
        }
    }
    // S^b: back-to-back pairs on the same instance.
    for (const datapath_instance& inst : path.instances) {
        for (const op_id o1 : inst.ops) {
            for (const op_id o2 : inst.ops) {
                if (o1 == o2) {
                    continue;
                }
                if (path.start[o1.value()] + inst.latency ==
                    path.start[o2.value()]) {
                    add_edge(o1.value(), o2.value());
                }
            }
        }
    }
    return aug;
}

std::vector<std::size_t> topo_order(const augmented_graph& aug)
{
    const std::size_t n = aug.succs.size();
    std::vector<std::size_t> in_degree(n, 0);
    for (std::size_t o = 0; o < n; ++o) {
        in_degree[o] = aug.preds[o].size();
    }
    std::vector<std::size_t> ready;
    for (std::size_t o = 0; o < n; ++o) {
        if (in_degree[o] == 0) {
            ready.push_back(o);
        }
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const auto it = std::min_element(ready.begin(), ready.end());
        const std::size_t o = *it;
        ready.erase(it);
        order.push_back(o);
        for (const std::size_t s : aug.succs[o]) {
            if (--in_degree[s] == 0) {
                ready.push_back(s);
            }
        }
    }
    // S^b edges always point forward in time (start strictly increases
    // along them), so the augmented graph is acyclic.
    MWL_ASSERT(order.size() == n);
    return order;
}

} // namespace

bound_critical_path compute_bound_critical_path(const sequencing_graph& graph,
                                                const datapath& path)
{
    const std::size_t n = graph.size();
    require(path.start.size() == n && path.instance_of_op.size() == n,
            "datapath does not match graph");

    bound_critical_path result;
    if (n == 0) {
        return result;
    }

    const augmented_graph aug = build_augmented(graph, path);
    const std::vector<std::size_t> order = topo_order(aug);

    const auto latency = [&](std::size_t o) {
        return path.bound_latency(op_id(o));
    };

    std::vector<int> asap(n, 0);
    for (const std::size_t o : order) {
        for (const std::size_t p : aug.preds[o]) {
            asap[o] = std::max(asap[o], asap[p] + latency(p));
        }
    }
    int length = 0;
    for (std::size_t o = 0; o < n; ++o) {
        length = std::max(length, asap[o] + latency(o));
    }
    result.augmented_length = length;

    std::vector<int> alap(n, 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::size_t o = *it;
        alap[o] = length - latency(o);
        for (const std::size_t s : aug.succs[o]) {
            alap[o] = std::min(alap[o], alap[s] - latency(o));
        }
    }

    for (std::size_t o = 0; o < n; ++o) {
        MWL_ASSERT(asap[o] <= alap[o]);
        if (asap[o] == alap[o]) {
            result.ops.emplace_back(o);
        }
    }
    return result;
}

} // namespace mwl
