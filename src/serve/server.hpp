// Allocation-as-a-service daemon core (the library behind tools/mwl_serve).
//
// A `server` owns listeners (unix and/or TCP), a batch engine with a
// lock-striped result cache, and one reader thread per connection.
// Requests are parsed off the socket, admitted against two bounds, and
// executed as tasks on the engine's work-stealing pool; responses are
// written back frame-at-a-time under a per-connection lock, so frames
// never tear even when many jobs for one client finish at once.
//
// Admission control / backpressure: an alloc request is rejected with
// `busy retry-after-ms=R` (nothing queued, reader keeps reading) when
// either bound would be exceeded --
//
//   * per-connection: more than `queue_depth` of this client's jobs
//     admitted but unanswered (a greedy client cannot monopolise the
//     pool), or
//   * global: more than `max_inflight` jobs admitted across all clients
//     (the pool's backlog stays bounded; latency stays predictable).
//
// Within a bound, TCP flow control is the natural backpressure: the
// reader thread only parses as fast as jobs are admitted.
//
// Graceful drain: `run()` polls `stop` every poll interval. Once it
// returns true (mwl_serve passes `interrupt_requested`), the server
// stops accepting, every reader stops parsing new frames, admitted jobs
// finish and their responses are written whole, connections close, and
// run() returns -- the tool then exits 3, mirroring mwl_batch and
// mwl_campaign. A client therefore sees one of: a complete response for
// every admitted request, then EOF; never a torn frame.
//
// Test knob (mirrors support/fault_inject): MWL_SERVE_STALL_MS=<n> makes
// every alloc job sleep n ms before allocating, so the queue-full,
// drain-during-inflight, and disconnect-with-inflight suites can pin
// their races deterministically.

#ifndef MWL_SERVE_SERVER_HPP
#define MWL_SERVE_SERVER_HPP

#include "engine/batch_engine.hpp"
#include "model/hardware_model.hpp"
#include "serve/protocol.hpp"
#include "support/stats.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace mwl::serve {

struct server_options {
    std::string unix_path;  ///< empty = no unix listener
    int tcp_port = -1;      ///< < 0 = no TCP listener; 0 = ephemeral port
    std::string tcp_host = "127.0.0.1";
    std::size_t jobs = 0;            ///< pool threads; 0 = hw concurrency
    std::size_t cache_capacity = 4096;
    std::size_t cache_shards = 16;
    std::size_t queue_depth = 64;    ///< per-connection admitted-job bound
    std::size_t max_inflight = 0;    ///< global bound; 0 = 4 * pool size
    std::size_t max_frame = default_max_frame;
    int retry_after_ms = 25;         ///< suggested client backoff on busy
    std::size_t latency_window_size = 4096;
    std::size_t max_connections = 256;
};

/// Server-side counters (the engine keeps its own `engine_stats`).
struct server_counters {
    std::uint64_t accepted = 0;        ///< connections ever accepted
    std::size_t active = 0;            ///< connections open right now
    std::uint64_t alloc_requests = 0;  ///< alloc frames parsed
    std::uint64_t stats_requests = 0;
    std::uint64_t ok_responses = 0;
    std::uint64_t error_responses = 0;
    std::uint64_t rejected_busy = 0;   ///< admission rejections
    std::uint64_t protocol_errors = 0; ///< malformed/truncated/oversized
    std::size_t queued = 0;            ///< jobs admitted, not yet answered
};

class server {
public:
    /// Bind the configured listeners (throws `mwl::error` on bind
    /// failure; a stale unix socket nobody answers on is replaced).
    explicit server(const server_options& options);

    /// Closes listeners and removes the unix socket path. `run()` must
    /// have returned (or never been called).
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Bound TCP port (useful with tcp_port = 0), -1 without a listener.
    [[nodiscard]] int tcp_port() const { return tcp_port_; }

    /// Accept and serve until `stop()` returns true (polled every ~50ms),
    /// then drain and return. `stop` must be callable from this thread.
    void run(const std::function<bool()>& stop);

    [[nodiscard]] server_counters counters() const;
    [[nodiscard]] engine_stats engine_snapshot() const
    {
        return engine_.snapshot();
    }
    [[nodiscard]] latency_summary latency() const
    {
        return latency_.summarize();
    }

    /// The stats endpoint's JSON document (also handy in-process).
    [[nodiscard]] std::string stats_json() const;

private:
    struct connection {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> finished{false};

        std::mutex write_mutex;     ///< one frame at a time onto the wire
        std::atomic<bool> dead{false}; ///< a write failed; stop writing

        /// Admitted jobs not yet answered; guarded by the server-wide
        /// pending_mutex_, NOT a per-connection lock: the pool worker
        /// that answers the last job must never touch a sync object
        /// whose lifetime ends with the connection it just finished.
        std::size_t pending = 0;
    };

    void serve_connection(connection& conn);
    void handle_alloc(connection& conn, request req);
    void respond(connection& conn, const response& r);
    void reap_finished(bool join_all);
    void retain_task(std::future<void> task);
    void await_tasks();

    server_options options_;
    sonic_model model_;
    batch_engine engine_;
    latency_window latency_;
    std::chrono::steady_clock::time_point started_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = -1;
    std::size_t max_inflight_ = 0;
    std::size_t pool_threads_ = 0;
    std::atomic<bool> draining_{false};

    std::mutex connections_mutex_;
    std::list<std::unique_ptr<connection>> connections_;

    std::mutex pending_mutex_;          ///< guards every connection's pending
    std::condition_variable pending_cv_; ///< signalled per answered job

    /// Futures of the completion tasks on the engine pool. A worker can
    /// still be in a task's tail after the job was answered and counted;
    /// run()'s drain (and ~server) waits on these so no worker touches a
    /// server member that is being destroyed under it.
    std::mutex tasks_mutex_;
    std::vector<std::future<void>> tasks_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::size_t> active_{0};
    std::atomic<std::uint64_t> alloc_requests_{0};
    std::atomic<std::uint64_t> stats_requests_{0};
    std::atomic<std::uint64_t> ok_responses_{0};
    std::atomic<std::uint64_t> error_responses_{0};
    std::atomic<std::uint64_t> rejected_busy_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::size_t> queued_{0};
};

} // namespace mwl::serve

#endif // MWL_SERVE_SERVER_HPP
