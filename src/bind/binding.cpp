#include "bind/binding.hpp"

#include "support/error.hpp"

#include <cstdint>
#include <vector>

namespace mwl {

void finalize_binding(binding& b, std::size_t n_ops,
                      const wordlength_compatibility_graph& wcg)
{
    b.clique_of_op.assign(n_ops, clique_id::invalid());
    b.total_area = 0.0;
    for (std::size_t ci = 0; ci < b.cliques.size(); ++ci) {
        const binding_clique& k = b.cliques[ci];
        require(!k.ops.empty(), "binding clique must be non-empty");
        b.total_area += wcg.area(k.resource);
        for (const op_id o : k.ops) {
            require(o.value() < n_ops, "clique member out of range");
            require(!b.clique_of_op[o.value()].is_valid(),
                    "operation bound to two cliques");
            require(wcg.compatible(o, k.resource),
                    "clique resource not compatible with member (Eqn. 4)");
            b.clique_of_op[o.value()] = clique_id(ci);
        }
    }
    for (std::size_t i = 0; i < n_ops; ++i) {
        require(b.clique_of_op[i].is_valid(), "operation left unbound");
    }
}

res_id cheapest_common_resource(const wordlength_compatibility_graph& wcg,
                                std::span<const op_id> ops)
{
    std::vector<std::uint32_t> hits;
    return cheapest_common_resource(wcg, ops, hits);
}

res_id cheapest_common_resource(const wordlength_compatibility_graph& wcg,
                                std::span<const op_id> ops,
                                std::vector<std::uint32_t>& hits_scratch)
{
    if (ops.empty()) {
        // Every resource is vacuously common; cheapest overall, ties
        // towards smaller res_id (matches a full scan).
        res_id best = res_id::invalid();
        for (const res_id r : wcg.all_resources()) {
            if (!best.is_valid() || wcg.area(r) < wcg.area(best)) {
                best = r;
            }
        }
        return best;
    }

    // Intersect the H(o) adjacency lists by counting instead of probing
    // every (resource, op) pair: r is common iff it appears in all |ops|
    // lists. O(sum |H(o)|) instead of O(|R| * |ops| * log).
    std::vector<std::uint32_t>& hits = hits_scratch;
    hits.assign(wcg.resource_count(), 0);
    for (const op_id o : ops) {
        for (const res_id r : wcg.resources_for(o)) {
            ++hits[r.value()];
        }
    }
    res_id best = res_id::invalid();
    for (const res_id r : wcg.resources_for(ops.front())) {
        if (hits[r.value()] != ops.size()) {
            continue;
        }
        if (!best.is_valid() || wcg.area(r) < wcg.area(best)) {
            best = r;
        }
    }
    return best;
}

} // namespace mwl
