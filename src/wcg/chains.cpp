#include "wcg/chains.hpp"

#include "support/error.hpp"

#include <algorithm>

namespace mwl {

std::vector<timed_op> longest_chain(std::span<const timed_op> items)
{
    if (items.empty()) {
        return {};
    }

    std::vector<timed_op> sorted(items.begin(), items.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const timed_op& a, const timed_op& b) {
                  if (a.start != b.start) {
                      return a.start < b.start;
                  }
                  if (a.finish() != b.finish()) {
                      return a.finish() < b.finish();
                  }
                  return a.op < b.op;
              });

    // dp[i]: length of the longest chain ending at sorted[i];
    // back[i]: predecessor index, or npos.
    const std::size_t n = sorted.size();
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> dp(n, 1);
    std::vector<std::size_t> back(n, npos);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (precedes(sorted[j], sorted[i]) && dp[j] + 1 > dp[i]) {
                dp[i] = dp[j] + 1;
                back[i] = j;
            }
        }
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        if (dp[i] > dp[best]) {
            best = i;
        }
    }

    std::vector<timed_op> chain;
    for (std::size_t at = best; at != npos; at = back[at]) {
        chain.push_back(sorted[at]);
    }
    std::reverse(chain.begin(), chain.end());
    MWL_ASSERT(is_chain(chain));
    return chain;
}

bool is_chain(std::span<const timed_op> items)
{
    for (std::size_t i = 0; i < items.size(); ++i) {
        for (std::size_t j = i + 1; j < items.size(); ++j) {
            if (!precedes(items[i], items[j]) &&
                !precedes(items[j], items[i])) {
                return false;
            }
        }
    }
    return true;
}

} // namespace mwl
